//! The `sg-trace` on-disk format: a versioned, self-describing JSONL
//! schema for probe event streams, with a streaming parser that
//! round-trips every [`Event`] losslessly.
//!
//! A trace is newline-delimited JSON in three sections:
//!
//! 1. **Header** (first line): `{"trace":"sg-trace","schema":1,...}` —
//!    schema version, engine, star order, workload seed, a
//!    config fingerprint, section counts, the number of events the
//!    recording [`crate::EventLog`] dropped past its capacity bound,
//!    and (for scheduler runs) the embedded [`SchedPhaseProfile`].
//! 2. **Packet preamble**: one `{"packet":pid,...}` line per injection
//!    in packet-id order. Events alone cannot reconstruct the
//!    source/destination of a packet that dies early (a fault drop
//!    names only the source PE), so the preamble carries what the
//!    workload knew: `src`, `dst`, injection `round`, and — for
//!    partitioned runs — the owning `job`.
//! 3. **Events**: the verbatim [`Event::to_json`] stream.
//!
//! The parser is strict: the header must come first, every packet
//! line must precede the first event line, and the section counts
//! must match the header — a truncated file is an error, never a
//! silently shorter run. Everything here is plain integers plus two
//! opaque strings (`engine`, `fingerprint`), so the module — like the
//! rest of `sg-obs` — depends on nothing above it.

use crate::probe::{DropReason, Event, StallKind};
use crate::profile::SchedPhaseProfile;
use std::fmt;

/// The schema version this build writes and understands.
pub const SCHEMA_VERSION: u32 = 1;

/// Everything that can go wrong reading (or replaying) a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The input had no lines at all.
    Empty,
    /// The first line is not an `sg-trace` header record.
    NotATrace,
    /// The header names a schema version this build cannot read.
    UnsupportedSchema {
        /// Version found in the header.
        found: u32,
    },
    /// A line failed to parse (1-based line number + reason).
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        msg: String,
    },
    /// A section ended before the header said it would.
    Truncated {
        /// Which section ("packet" or "event").
        kind: &'static str,
        /// Count promised by the header.
        expected: u64,
        /// Count actually present.
        found: u64,
    },
    /// The recording log was capacity-bounded and dropped events; the
    /// stream is incomplete, so derived state cannot be reconstructed.
    DroppedEvents {
        /// How many events the recorder discarded.
        dropped: u64,
    },
    /// Replay found the stream internally inconsistent (e.g. a
    /// `round_end` total disagreeing with the replayed queue state).
    Inconsistent {
        /// First inconsistency found.
        msg: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Empty => write!(f, "empty input: not a trace"),
            TraceError::NotATrace => {
                write!(f, "first line is not an sg-trace header record")
            }
            TraceError::UnsupportedSchema { found } => write!(
                f,
                "unsupported schema version {found} (this build reads {SCHEMA_VERSION})"
            ),
            TraceError::Malformed { line, msg } => write!(f, "line {line}: {msg}"),
            TraceError::Truncated {
                kind,
                expected,
                found,
            } => write!(
                f,
                "truncated trace: header promises {expected} {kind} record(s), found {found}"
            ),
            TraceError::DroppedEvents { dropped } => write!(
                f,
                "refusing to replay a truncated log: the recorder's capacity bound dropped \
                 {dropped} event(s), so derived state cannot be reconstructed — record with an \
                 unbounded EventLog"
            ),
            TraceError::Inconsistent { msg } => {
                write!(f, "inconsistent event stream: {msg}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// The self-describing first record of a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHeader {
    /// Schema version ([`SCHEMA_VERSION`] when written by this build).
    pub schema: u32,
    /// Which engine produced the stream (`"fast"`, `"reference"`,
    /// `"sched"`).
    pub engine: String,
    /// Star order of the run.
    pub n: u32,
    /// Workload (or job-stream) seed.
    pub seed: u64,
    /// Opaque configuration fingerprint — enough to tell two logs
    /// were recorded under the same knobs.
    pub fingerprint: String,
    /// Number of tenant jobs for a partitioned run; 0 when the run
    /// was not partitioned.
    pub jobs: u32,
    /// Packet-preamble records that follow.
    pub packets: u64,
    /// Event records that follow.
    pub events: u64,
    /// Events the recording [`crate::EventLog`] dropped past its
    /// capacity bound. Non-zero means the stream is incomplete and
    /// replay will refuse it.
    pub dropped: u64,
    /// The scheduler's event-loop self-profile, embedded for
    /// `schedule_probed` runs.
    pub sched_profile: Option<SchedPhaseProfile>,
}

impl TraceHeader {
    /// Render the header as one newline-free JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"trace\":\"sg-trace\",\"schema\":{},\"engine\":\"{}\",\"n\":{},\"seed\":{},\
             \"fingerprint\":\"{}\",\"jobs\":{},\"packets\":{},\"events\":{},\"dropped\":{}",
            self.schema,
            escape(&self.engine),
            self.n,
            self.seed,
            escape(&self.fingerprint),
            self.jobs,
            self.packets,
            self.events,
            self.dropped,
        );
        if let Some(p) = &self.sched_profile {
            out.push_str(",\"sched_profile\":");
            out.push_str(&p.to_json());
        }
        out.push('}');
        out
    }
}

/// One packet-preamble record: what the workload knew about packet
/// `pid` before the run started.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracePacket {
    /// Packet id (= injection index; records appear in this order).
    pub pid: u32,
    /// Source PE (Lehmer rank).
    pub src: u64,
    /// Destination PE (Lehmer rank).
    pub dst: u64,
    /// Scheduled injection round.
    pub round: u32,
    /// Owning job for a partitioned run.
    pub job: Option<u32>,
}

impl TracePacket {
    /// Render the record as one newline-free JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        match self.job {
            Some(j) => format!(
                "{{\"packet\":{},\"src\":{},\"dst\":{},\"round\":{},\"job\":{j}}}",
                self.pid, self.src, self.dst, self.round
            ),
            None => format!(
                "{{\"packet\":{},\"src\":{},\"dst\":{},\"round\":{}}}",
                self.pid, self.src, self.dst, self.round
            ),
        }
    }
}

/// A fully parsed trace: header, packet preamble, event stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// The self-describing header record.
    pub header: TraceHeader,
    /// Packet preamble in packet-id order (empty for scheduler runs).
    pub packets: Vec<TracePacket>,
    /// The recorded event stream, in emission order.
    pub events: Vec<Event>,
}

impl Trace {
    /// Serialize the whole trace back to JSONL. Inverse of
    /// [`Trace::parse`]: `parse(t.to_jsonl())` reproduces `t` exactly.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        debug_assert_eq!(self.header.packets, self.packets.len() as u64);
        debug_assert_eq!(self.header.events, self.events.len() as u64);
        let mut out = self.header.to_json();
        out.push('\n');
        for p in &self.packets {
            out.push_str(&p.to_json());
            out.push('\n');
        }
        for ev in &self.events {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }

    /// Parse a JSONL trace. Streaming and strict: one pass over the
    /// lines, and any structural problem — missing header, wrong
    /// schema version, malformed line, out-of-order section, counts
    /// short of the header's promise — is an error.
    ///
    /// # Errors
    /// See [`TraceError`].
    pub fn parse(text: &str) -> Result<Trace, TraceError> {
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let (_, first) = lines.next().ok_or(TraceError::Empty)?;
        let header = parse_header(first)?;
        let mut packets = Vec::with_capacity(usize::try_from(header.packets).unwrap_or(0));
        let mut events = Vec::with_capacity(usize::try_from(header.events).unwrap_or(0));
        let mut in_events = false;
        for (idx, line) in lines {
            let lineno = idx + 1;
            let fields =
                parse_flat(line).map_err(|msg| TraceError::Malformed { line: lineno, msg })?;
            let err = |msg: String| TraceError::Malformed { line: lineno, msg };
            if get(&fields, "ev").is_some() {
                in_events = true;
                events.push(
                    Event::from_json(line)
                        .map_err(|msg| TraceError::Malformed { line: lineno, msg })?,
                );
            } else if get(&fields, "packet").is_some() {
                if in_events {
                    return Err(err("packet record after the first event record".into()));
                }
                let pid = req_u32(&fields, "packet").map_err(&err)?;
                if u64::from(pid) != packets.len() as u64 {
                    return Err(err(format!(
                        "packet records out of order: expected pid {}, found {pid}",
                        packets.len()
                    )));
                }
                packets.push(TracePacket {
                    pid,
                    src: req_u64(&fields, "src").map_err(&err)?,
                    dst: req_u64(&fields, "dst").map_err(&err)?,
                    round: req_u32(&fields, "round").map_err(&err)?,
                    job: opt_u32(&fields, "job").map_err(&err)?,
                });
            } else if get(&fields, "trace").is_some() {
                return Err(err("second header record".into()));
            } else {
                return Err(err("unrecognized record (no \"ev\"/\"packet\" key)".into()));
            }
        }
        if (packets.len() as u64) < header.packets {
            return Err(TraceError::Truncated {
                kind: "packet",
                expected: header.packets,
                found: packets.len() as u64,
            });
        }
        if (packets.len() as u64) > header.packets {
            return Err(TraceError::Inconsistent {
                msg: format!(
                    "header promises {} packet record(s), found {}",
                    header.packets,
                    packets.len()
                ),
            });
        }
        if (events.len() as u64) < header.events {
            return Err(TraceError::Truncated {
                kind: "event",
                expected: header.events,
                found: events.len() as u64,
            });
        }
        if (events.len() as u64) > header.events {
            return Err(TraceError::Inconsistent {
                msg: format!(
                    "header promises {} event record(s), found {}",
                    header.events,
                    events.len()
                ),
            });
        }
        Ok(Trace {
            header,
            packets,
            events,
        })
    }
}

impl Event {
    /// Parse one [`Event::to_json`] line back into the event. Total
    /// inverse: every variant round-trips losslessly (property-tested
    /// in this module and across whole recorded runs by the
    /// round-trip suite).
    ///
    /// # Errors
    /// A human-readable reason when the line is not a valid event
    /// record.
    pub fn from_json(line: &str) -> Result<Event, String> {
        let fields = parse_flat(line)?;
        let name = req_str(&fields, "ev")?;
        let round = |key: &str| req_u32(&fields, key);
        Ok(match name.as_str() {
            "round_begin" => Event::RoundBegin {
                round: round("round")?,
            },
            "round_end" => Event::RoundEnd {
                round: round("round")?,
                queued: req_u64(&fields, "queued")?,
                in_flight: req_u64(&fields, "in_flight")?,
                stalled: req_u64(&fields, "stalled")?,
            },
            "forwarded" => Event::Forwarded {
                round: round("round")?,
                pid: req_u32(&fields, "pid")?,
                from: req_u32(&fields, "from")?,
                to: req_u32(&fields, "to")?,
                gen: req_u8(&fields, "gen")?,
                escape: req_bool(&fields, "escape")?,
            },
            "queued" => Event::Queued {
                round: round("round")?,
                pid: req_u32(&fields, "pid")?,
                pe: req_u32(&fields, "pe")?,
                gen: req_u8(&fields, "gen")?,
                depth: req_u32(&fields, "depth")?,
                escape: req_bool(&fields, "escape")?,
            },
            "stalled" => Event::Stalled {
                round: round("round")?,
                pid: req_u32(&fields, "pid")?,
                pe: req_u32(&fields, "pe")?,
                kind: match req_str(&fields, "kind")?.as_str() {
                    "injection" => StallKind::Injection,
                    "credit_head" => StallKind::CreditHead,
                    other => return Err(format!("unknown stall kind {other:?}")),
                },
            },
            "diverted" => Event::Diverted {
                round: round("round")?,
                pid: req_u32(&fields, "pid")?,
                pe: req_u32(&fields, "pe")?,
                class: req_u32(&fields, "class")?,
            },
            "dropped" => Event::Dropped {
                round: round("round")?,
                pid: req_u32(&fields, "pid")?,
                pe: req_u32(&fields, "pe")?,
                reason: match req_str(&fields, "reason")?.as_str() {
                    "fault" => DropReason::Fault,
                    "unreachable" => DropReason::Unreachable,
                    "overflow" => DropReason::Overflow,
                    "stranded" => DropReason::Stranded,
                    other => return Err(format!("unknown drop reason {other:?}")),
                },
            },
            "delivered" => Event::Delivered {
                round: round("round")?,
                pid: req_u32(&fields, "pid")?,
                pe: req_u32(&fields, "pe")?,
                hops: req_u32(&fields, "hops")?,
            },
            "job_arrived" => Event::JobArrived {
                round: round("time")?,
                job: req_u32(&fields, "job")?,
            },
            "job_placed" => Event::JobPlaced {
                round: round("time")?,
                job: req_u32(&fields, "job")?,
                order: req_u8(&fields, "order")?,
                pes: req_u64(&fields, "pes")?,
            },
            "job_released" => Event::JobReleased {
                round: round("time")?,
                job: req_u32(&fields, "job")?,
            },
            "job_reserved" => Event::JobReserved {
                round: round("time")?,
                job: req_u32(&fields, "job")?,
                start: req_u32(&fields, "start")?,
            },
            "job_backfilled" => Event::JobBackfilled {
                round: round("time")?,
                job: req_u32(&fields, "job")?,
            },
            other => return Err(format!("unknown event kind {other:?}")),
        })
    }
}

fn parse_header(line: &str) -> Result<TraceHeader, TraceError> {
    let fields = parse_flat(line).map_err(|_| TraceError::NotATrace)?;
    match get(&fields, "trace").map(unquote) {
        Some(Ok(tag)) if tag == "sg-trace" => {}
        _ => return Err(TraceError::NotATrace),
    }
    let err = |msg: String| TraceError::Malformed { line: 1, msg };
    let schema = req_u32(&fields, "schema").map_err(err)?;
    if schema != SCHEMA_VERSION {
        return Err(TraceError::UnsupportedSchema { found: schema });
    }
    let err = |msg: String| TraceError::Malformed { line: 1, msg };
    let sched_profile = match get(&fields, "sched_profile") {
        None => None,
        Some(raw) => {
            let inner = parse_flat(raw).map_err(err)?;
            let err = |msg: String| TraceError::Malformed { line: 1, msg };
            Some(SchedPhaseProfile {
                rounds: req_u64(&inner, "rounds").map_err(err)?,
                placement_ticks: req_u64(&inner, "placement").map_err(err)?,
                drain_ticks: req_u64(&inner, "drain").map_err(err)?,
                backfill_ticks: req_u64(&inner, "backfill").map_err(err)?,
                release_ticks: req_u64(&inner, "release").map_err(err)?,
            })
        }
    };
    let err = |msg: String| TraceError::Malformed { line: 1, msg };
    Ok(TraceHeader {
        schema,
        engine: req_str(&fields, "engine").map_err(err)?,
        n: req_u32(&fields, "n").map_err(err)?,
        seed: req_u64(&fields, "seed").map_err(err)?,
        fingerprint: req_str(&fields, "fingerprint").map_err(err)?,
        jobs: req_u32(&fields, "jobs").map_err(err)?,
        packets: req_u64(&fields, "packets").map_err(err)?,
        events: req_u64(&fields, "events").map_err(err)?,
        dropped: req_u64(&fields, "dropped").map_err(err)?,
        sched_profile,
    })
}

// ---- minimal flat-JSON scanner ------------------------------------
//
// The build container is offline (no serde); every record we read is
// one flat JSON object whose values are integers, booleans, strings
// without exotic escapes, or one nested flat object. The scanner
// below parses exactly that grammar, byte by byte, and rejects
// anything else.

/// Split one JSON object into `(key, raw-value)` slices.
fn parse_flat(line: &str) -> Result<Vec<(&str, &str)>, String> {
    let s = line.trim();
    let b = s.as_bytes();
    if b.first() != Some(&b'{') {
        return Err("expected '{'".into());
    }
    let mut pairs = Vec::new();
    let mut i = 1usize;
    loop {
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        match b.get(i) {
            None => return Err("unterminated object".into()),
            Some(b'}') => {
                i += 1;
                break;
            }
            Some(b'"') => {}
            Some(c) => return Err(format!("expected key, found {:?}", *c as char)),
        }
        let kstart = i + 1;
        let kend = quote_end(b, kstart)?;
        let key = &s[kstart..kend];
        i = kend + 1;
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        if b.get(i) != Some(&b':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        i += 1;
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        let vstart = i;
        match b.get(i) {
            Some(b'"') => i = quote_end(b, i + 1)? + 1,
            Some(b'{') => i = brace_end(b, i)?,
            Some(_) => {
                while i < b.len() && b[i] != b',' && b[i] != b'}' {
                    i += 1;
                }
            }
            None => return Err(format!("missing value for key {key:?}")),
        }
        pairs.push((key, s[vstart..i].trim_end()));
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        match b.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => {}
            _ => return Err(format!("expected ',' or '}}' after value of {key:?}")),
        }
    }
    while i < b.len() {
        if !b[i].is_ascii_whitespace() {
            return Err("trailing garbage after object".into());
        }
        i += 1;
    }
    Ok(pairs)
}

/// Index of the closing quote of a string whose body starts at `i`.
fn quote_end(b: &[u8], mut i: usize) -> Result<usize, String> {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return Ok(i),
            _ => i += 1,
        }
    }
    Err("unterminated string".into())
}

/// Index one past the matching `}` of an object opening at `i`.
fn brace_end(b: &[u8], mut i: usize) -> Result<usize, String> {
    let mut depth = 0usize;
    while i < b.len() {
        match b[i] {
            b'"' => i = quote_end(b, i + 1)?,
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Ok(i + 1);
                }
            }
            _ => {}
        }
        i += 1;
    }
    Err("unterminated nested object".into())
}

fn get<'a>(pairs: &[(&'a str, &'a str)], key: &str) -> Option<&'a str> {
    pairs.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
}

fn req<'a>(pairs: &[(&'a str, &'a str)], key: &str) -> Result<&'a str, String> {
    get(pairs, key).ok_or_else(|| format!("missing field {key:?}"))
}

fn req_u64(pairs: &[(&str, &str)], key: &str) -> Result<u64, String> {
    let raw = req(pairs, key)?;
    raw.parse::<u64>()
        .map_err(|_| format!("field {key:?}: {raw:?} is not a u64"))
}

fn req_u32(pairs: &[(&str, &str)], key: &str) -> Result<u32, String> {
    let v = req_u64(pairs, key)?;
    u32::try_from(v).map_err(|_| format!("field {key:?}: {v} overflows u32"))
}

fn opt_u32(pairs: &[(&str, &str)], key: &str) -> Result<Option<u32>, String> {
    match get(pairs, key) {
        None => Ok(None),
        Some(_) => req_u32(pairs, key).map(Some),
    }
}

fn req_u8(pairs: &[(&str, &str)], key: &str) -> Result<u8, String> {
    let v = req_u64(pairs, key)?;
    u8::try_from(v).map_err(|_| format!("field {key:?}: {v} overflows u8"))
}

fn req_bool(pairs: &[(&str, &str)], key: &str) -> Result<bool, String> {
    match req(pairs, key)? {
        "true" => Ok(true),
        "false" => Ok(false),
        raw => Err(format!("field {key:?}: {raw:?} is not a bool")),
    }
}

fn req_str(pairs: &[(&str, &str)], key: &str) -> Result<String, String> {
    unquote(req(pairs, key)?).map_err(|msg| format!("field {key:?}: {msg}"))
}

fn unquote(raw: &str) -> Result<String, String> {
    let inner = raw
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| format!("{raw:?} is not a string"))?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                other => return Err(format!("unsupported escape \\{other:?}")),
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

/// Escape a string for embedding in a JSON value (quote + backslash).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn every_variant() -> Vec<Event> {
        vec![
            Event::RoundBegin { round: 3 },
            Event::RoundEnd {
                round: 3,
                queued: 7,
                in_flight: 2,
                stalled: 1,
            },
            Event::Forwarded {
                round: 3,
                pid: 9,
                from: 4,
                to: 5,
                gen: 2,
                escape: true,
            },
            Event::Queued {
                round: 3,
                pid: 9,
                pe: 4,
                gen: 1,
                depth: 2,
                escape: false,
            },
            Event::Stalled {
                round: 3,
                pid: 9,
                pe: 4,
                kind: StallKind::Injection,
            },
            Event::Stalled {
                round: 4,
                pid: 9,
                pe: 4,
                kind: StallKind::CreditHead,
            },
            Event::Diverted {
                round: 3,
                pid: 9,
                pe: 4,
                class: 2,
            },
            Event::Dropped {
                round: 3,
                pid: 9,
                pe: 4,
                reason: DropReason::Overflow,
            },
            Event::Dropped {
                round: 3,
                pid: 10,
                pe: 4,
                reason: DropReason::Stranded,
            },
            Event::Delivered {
                round: 3,
                pid: 9,
                pe: 4,
                hops: 2,
            },
            Event::JobArrived { round: 0, job: 1 },
            Event::JobPlaced {
                round: 2,
                job: 1,
                order: 3,
                pes: 6,
            },
            Event::JobReleased { round: 9, job: 1 },
            Event::JobReserved {
                round: 2,
                job: 4,
                start: 9,
            },
            Event::JobBackfilled { round: 2, job: 5 },
        ]
    }

    #[test]
    fn every_event_round_trips() {
        for ev in every_variant() {
            let line = ev.to_json();
            let back = Event::from_json(&line).expect("parses");
            assert_eq!(back, ev, "round-trip failed for {line}");
        }
    }

    fn sample_trace() -> Trace {
        Trace {
            header: TraceHeader {
                schema: SCHEMA_VERSION,
                engine: "fast".into(),
                n: 3,
                seed: 42,
                fingerprint: "s3;latency=1;flow=tail_drop(cap=none)".into(),
                jobs: 2,
                packets: 2,
                events: 3,
                dropped: 0,
                sched_profile: Some(SchedPhaseProfile {
                    rounds: 4,
                    placement_ticks: 5,
                    drain_ticks: 2,
                    backfill_ticks: 4,
                    release_ticks: 5,
                }),
            },
            packets: vec![
                TracePacket {
                    pid: 0,
                    src: 0,
                    dst: 5,
                    round: 0,
                    job: Some(0),
                },
                TracePacket {
                    pid: 1,
                    src: 3,
                    dst: 1,
                    round: 2,
                    job: Some(1),
                },
            ],
            events: vec![
                Event::RoundBegin { round: 0 },
                Event::Queued {
                    round: 0,
                    pid: 0,
                    pe: 0,
                    gen: 1,
                    depth: 1,
                    escape: false,
                },
                Event::RoundEnd {
                    round: 0,
                    queued: 1,
                    in_flight: 0,
                    stalled: 0,
                },
            ],
        }
    }

    #[test]
    fn trace_round_trips() {
        let t = sample_trace();
        let text = t.to_jsonl();
        let back = Trace::parse(&text).expect("parses");
        assert_eq!(back, t);
    }

    #[test]
    fn header_without_profile_round_trips() {
        let mut t = sample_trace();
        t.header.sched_profile = None;
        t.header.jobs = 0;
        t.packets.iter_mut().for_each(|p| p.job = None);
        let back = Trace::parse(&t.to_jsonl()).expect("parses");
        assert_eq!(back, t);
    }

    #[test]
    fn missing_header_is_rejected() {
        let t = sample_trace();
        let text = t.to_jsonl();
        let body = text.split_once('\n').unwrap().1;
        assert_eq!(Trace::parse(body), Err(TraceError::NotATrace));
        assert_eq!(Trace::parse(""), Err(TraceError::Empty));
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let mut t = sample_trace();
        t.header.schema = SCHEMA_VERSION + 1;
        assert_eq!(
            Trace::parse(&t.to_jsonl()),
            Err(TraceError::UnsupportedSchema {
                found: SCHEMA_VERSION + 1
            })
        );
    }

    #[test]
    fn truncated_sections_are_rejected() {
        let t = sample_trace();
        let text = t.to_jsonl();
        let mut lines: Vec<&str> = text.lines().collect();
        lines.pop();
        assert_eq!(
            Trace::parse(&lines.join("\n")),
            Err(TraceError::Truncated {
                kind: "event",
                expected: 3,
                found: 2
            })
        );
        let only_header: String = text.lines().take(1).collect();
        assert_eq!(
            Trace::parse(&only_header),
            Err(TraceError::Truncated {
                kind: "packet",
                expected: 2,
                found: 0
            })
        );
    }

    #[test]
    fn packet_after_event_is_rejected() {
        let t = sample_trace();
        let text = t.to_jsonl();
        let mut lines: Vec<&str> = text.lines().collect();
        let pkt = lines.remove(1);
        lines.push(pkt);
        let got = Trace::parse(&lines.join("\n"));
        assert!(
            matches!(got, Err(TraceError::Malformed { .. })),
            "got {got:?}"
        );
    }

    #[test]
    fn fingerprint_escaping_round_trips() {
        let mut t = sample_trace();
        t.header.fingerprint = "quote \" and backslash \\ survive".into();
        let back = Trace::parse(&t.to_jsonl()).expect("parses");
        assert_eq!(back.header.fingerprint, t.header.fingerprint);
    }

    #[test]
    fn malformed_lines_name_their_line() {
        let t = sample_trace();
        let mut text = t.to_jsonl();
        text.push_str("{\"ev\":\"no_such_event\"}\n");
        match Trace::parse(&text) {
            Err(TraceError::Malformed { line, .. }) => assert_eq!(line, 7),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }
}
