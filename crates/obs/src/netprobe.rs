//! `NetProbe` — a ready-made metrics probe for `sg-net` runs.
//!
//! Consumes the event stream and maintains: per-link forward counts
//! (the "hot link" table), per-PE occupancy, a queue-depth histogram,
//! escape-bank occupancy, optional per-tenant in-flight gauges, and
//! bounded per-round time series for queued/stalled totals. Hot
//! per-link/per-PE state lives in flat arrays sized at construction;
//! everything scalar goes through a [`MetricsRegistry`] so it renders
//! and exports uniformly.

use crate::metrics::{
    CounterId, Gauge, GaugeId, Histogram, HistogramId, MetricsRegistry, RingSeries, SeriesId,
};
use crate::probe::{Event, Probe};

/// Default capacity of the per-round time series.
pub const DEFAULT_SERIES_CAP: usize = 4096;

/// Default queue-depth histogram bucket upper bounds (powers of two).
/// Pass finer edges to [`NetProbe::with_buckets`] when the deltas you
/// care about (e.g. drained-release latency shifts) land inside one
/// power-of-two bucket.
pub const DEFAULT_DEPTH_BUCKETS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128];

/// One entry of the hot-link table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotLink {
    /// Link tail PE (Lehmer rank).
    pub pe: u32,
    /// Generator of the link (`1..n`).
    pub gen: u8,
    /// Flits forwarded over the link.
    pub count: u64,
}

/// A metrics probe for interconnect runs.
///
/// Construct with the network's `node_count()` and `n() - 1`
/// generators; optionally attach a tenant owner map to get per-tenant
/// in-flight gauges. Attach with [`Network::run_probed`] — the run's
/// `TrafficStats` are untouched (asserted by the differential suite).
///
/// [`Network::run_probed`]: ../sg_net/struct.Network.html#method.run_probed
#[derive(Debug, Clone)]
pub struct NetProbe {
    gens: usize,
    reg: MetricsRegistry,
    c_rounds: CounterId,
    c_forwarded: CounterId,
    c_delivered: CounterId,
    c_dropped: CounterId,
    c_diverted: CounterId,
    c_stalled: CounterId,
    g_escape: GaugeId,
    h_depth: HistogramId,
    s_queued: SeriesId,
    s_stalled: SeriesId,
    link_forwards: Vec<u64>,
    pe_depth: Vec<u32>,
    escape_occ: Vec<u32>,
    peak_escape: u64,
    peak_depth: u32,
    peak_depth_round: u32,
    owner: Vec<u32>,
    tenant_gauges: Vec<GaugeId>,
    entered: Vec<bool>,
}

impl NetProbe {
    /// A probe for a network of `node_count` PEs with `gens = n - 1`
    /// generators per PE, with the default series capacity.
    #[must_use]
    pub fn new(node_count: usize, gens: usize) -> Self {
        Self::with_capacity(node_count, gens, DEFAULT_SERIES_CAP)
    }

    /// Like [`NetProbe::new`] with an explicit ring-series capacity.
    #[must_use]
    pub fn with_capacity(node_count: usize, gens: usize, series_cap: usize) -> Self {
        Self::with_buckets(node_count, gens, series_cap, DEFAULT_DEPTH_BUCKETS)
    }

    /// Like [`NetProbe::with_capacity`] with explicit queue-depth
    /// histogram bucket edges (strictly increasing upper bounds; an
    /// implicit overflow bucket catches everything past the last).
    /// [`DEFAULT_DEPTH_BUCKETS`] reproduces [`NetProbe::new`]
    /// byte-identically.
    #[must_use]
    pub fn with_buckets(
        node_count: usize,
        gens: usize,
        series_cap: usize,
        depth_buckets: &[u64],
    ) -> Self {
        let mut reg = MetricsRegistry::new();
        let c_rounds = reg.counter("rounds_observed");
        let c_forwarded = reg.counter("flits_forwarded");
        let c_delivered = reg.counter("packets_delivered");
        let c_dropped = reg.counter("packets_dropped");
        let c_diverted = reg.counter("escape_diversions");
        let c_stalled = reg.counter("stall_events");
        let g_escape = reg.gauge("escape_bank_occupancy");
        let h_depth = reg.histogram("queue_depth", depth_buckets);
        let s_queued = reg.series("queued_per_round", series_cap);
        let s_stalled = reg.series("stalled_per_round", series_cap);
        Self {
            gens,
            reg,
            c_rounds,
            c_forwarded,
            c_delivered,
            c_dropped,
            c_diverted,
            c_stalled,
            g_escape,
            h_depth,
            s_queued,
            s_stalled,
            link_forwards: vec![0; node_count * gens],
            pe_depth: vec![0; node_count],
            escape_occ: vec![0; node_count],
            peak_escape: 0,
            peak_depth: 0,
            peak_depth_round: 0,
            owner: Vec::new(),
            tenant_gauges: Vec::new(),
            entered: Vec::new(),
        }
    }

    /// Attach a tenant owner map (`owner[pid] = tenant index`) and
    /// register one in-flight gauge per tenant.
    #[must_use]
    pub fn with_tenants(mut self, owner: Vec<u32>, tenants: usize) -> Self {
        self.tenant_gauges = (0..tenants)
            .map(|t| self.reg.gauge(&format!("tenant{t}_in_flight")))
            .collect();
        self.entered = vec![false; owner.len()];
        self.owner = owner;
        self
    }

    fn link_index(&self, pe: u32, gen: u8) -> usize {
        pe as usize * self.gens + (gen as usize - 1)
    }

    fn enter(&mut self, pid: u32) {
        if let Some(&t) = self.owner.get(pid as usize) {
            if !std::mem::replace(&mut self.entered[pid as usize], true) {
                self.reg.gauge_mut(self.tenant_gauges[t as usize]).add(1);
            }
        }
    }

    fn exit(&mut self, pid: u32) {
        if let Some(&t) = self.owner.get(pid as usize) {
            if std::mem::replace(&mut self.entered[pid as usize], false) {
                self.reg.gauge_mut(self.tenant_gauges[t as usize]).add(-1);
            }
        }
    }

    /// The underlying registry (counters, gauges, histogram, series).
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.reg
    }

    /// Observable rounds seen (rounds that emitted any event).
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.reg.counter_value("rounds_observed").unwrap_or(0)
    }

    /// The `k` busiest links, by forward count (ties: lowest PE, then
    /// lowest generator — deterministic).
    #[must_use]
    pub fn top_links(&self, k: usize) -> Vec<HotLink> {
        let mut busy: Vec<HotLink> = self
            .link_forwards
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &count)| HotLink {
                pe: (i / self.gens) as u32,
                gen: (i % self.gens + 1) as u8,
                count,
            })
            .collect();
        busy.sort_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then(a.pe.cmp(&b.pe))
                .then(a.gen.cmp(&b.gen))
        });
        busy.truncate(k);
        busy
    }

    /// Peak single-queue depth observed, and the round it was first
    /// reached.
    #[must_use]
    pub fn peak_queue_depth(&self) -> (u32, u32) {
        (self.peak_depth, self.peak_depth_round)
    }

    /// The queue-depth histogram (one sample per enqueue).
    #[must_use]
    pub fn depth_histogram(&self) -> &Histogram {
        self.reg.histogram_value("queue_depth").expect("registered")
    }

    /// The bounded queued-flits-per-round series.
    #[must_use]
    pub fn queued_series(&self) -> &RingSeries {
        self.reg
            .series_value("queued_per_round")
            .expect("registered")
    }

    /// Peak escape-bank occupancy at any **single** PE — a probe-side
    /// recount of `TrafficStats::peak_escape_occupancy`. (The
    /// `escape_bank_occupancy` gauge tracks the *global* resident
    /// count instead; its peak bounds this one from above.)
    #[must_use]
    pub fn peak_escape_occupancy(&self) -> u64 {
        self.peak_escape
    }

    /// Peak in-flight flits for tenant `t` (requires
    /// [`NetProbe::with_tenants`]).
    #[must_use]
    pub fn tenant_peak_in_flight(&self, t: usize) -> i64 {
        self.reg
            .gauge_value(&format!("tenant{t}_in_flight"))
            .map_or(0, Gauge::peak)
    }

    /// Render the probe's dashboard section: top-k hot links, the
    /// queue-depth histogram, and the per-round series summary.
    #[must_use]
    pub fn render(&self, k: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!("top-{k} hot links (pe, generator, flits):\n"));
        for l in self.top_links(k) {
            out.push_str(&format!("  pe {:>7}  g{}  {:>9}\n", l.pe, l.gen, l.count));
        }
        let (d, r) = self.peak_queue_depth();
        out.push_str(&format!(
            "peak queue depth {d} first reached in round {r}\n"
        ));
        out.push_str("queue-depth histogram (samples are depth-after-push):\n");
        out.push_str(&self.depth_histogram().render());
        if let Some((round, v)) = self.queued_series().peak() {
            out.push_str(&format!("peak queued flits {v} in round {round}\n"));
        }
        out
    }
}

impl Probe for NetProbe {
    fn event(&mut self, ev: &Event) {
        match *ev {
            Event::RoundBegin { .. } => self.reg.counter_mut(self.c_rounds).inc(),
            Event::RoundEnd {
                round,
                queued,
                stalled,
                ..
            } => {
                self.reg.series_mut(self.s_queued).push(round, queued);
                self.reg.series_mut(self.s_stalled).push(round, stalled);
            }
            Event::Forwarded {
                pid,
                from,
                gen,
                escape,
                ..
            } => {
                self.reg.counter_mut(self.c_forwarded).inc();
                let li = self.link_index(from, gen);
                self.link_forwards[li] += 1;
                self.pe_depth[from as usize] -= 1;
                if escape {
                    self.escape_occ[from as usize] -= 1;
                    self.reg.gauge_mut(self.g_escape).add(-1);
                }
                self.enter(pid);
            }
            Event::Queued {
                round,
                pid,
                pe,
                depth,
                escape,
                ..
            } => {
                self.pe_depth[pe as usize] += 1;
                if escape {
                    self.escape_occ[pe as usize] += 1;
                    self.peak_escape = self
                        .peak_escape
                        .max(u64::from(self.escape_occ[pe as usize]));
                    self.reg.gauge_mut(self.g_escape).add(1);
                } else {
                    self.reg
                        .histogram_mut(self.h_depth)
                        .record(u64::from(depth));
                    if depth > self.peak_depth {
                        self.peak_depth = depth;
                        self.peak_depth_round = round;
                    }
                }
                self.enter(pid);
            }
            Event::Stalled { .. } => self.reg.counter_mut(self.c_stalled).inc(),
            Event::Diverted { pe, .. } => {
                self.reg.counter_mut(self.c_diverted).inc();
                self.escape_occ[pe as usize] += 1;
                self.peak_escape = self
                    .peak_escape
                    .max(u64::from(self.escape_occ[pe as usize]));
                self.reg.gauge_mut(self.g_escape).add(1);
            }
            Event::Dropped { pid, .. } => {
                self.reg.counter_mut(self.c_dropped).inc();
                self.exit(pid);
            }
            Event::Delivered { pid, .. } => {
                self.reg.counter_mut(self.c_delivered).inc();
                self.exit(pid);
            }
            Event::JobArrived { .. }
            | Event::JobPlaced { .. }
            | Event::JobReleased { .. }
            | Event::JobReserved { .. }
            | Event::JobBackfilled { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_forwards_per_link_and_tracks_peak_depth() {
        let mut p = NetProbe::new(4, 2);
        p.event(&Event::RoundBegin { round: 0 });
        p.event(&Event::Queued {
            round: 0,
            pid: 0,
            pe: 1,
            gen: 2,
            depth: 1,
            escape: false,
        });
        p.event(&Event::Queued {
            round: 0,
            pid: 1,
            pe: 1,
            gen: 2,
            depth: 2,
            escape: false,
        });
        p.event(&Event::Forwarded {
            round: 0,
            pid: 0,
            from: 1,
            to: 3,
            gen: 2,
            escape: false,
        });
        p.event(&Event::RoundEnd {
            round: 0,
            queued: 1,
            in_flight: 1,
            stalled: 0,
        });
        assert_eq!(p.rounds(), 1);
        assert_eq!(p.peak_queue_depth(), (2, 0));
        let top = p.top_links(3);
        assert_eq!(top.len(), 1);
        assert_eq!((top[0].pe, top[0].gen, top[0].count), (1, 2, 1));
        assert_eq!(p.queued_series().samples(), vec![(0, 1)]);
        assert_eq!(p.pe_depth[1], 1);
    }

    #[test]
    fn escape_occupancy_balances() {
        let mut p = NetProbe::new(2, 1);
        p.event(&Event::Queued {
            round: 1,
            pid: 0,
            pe: 0,
            gen: 1,
            depth: 1,
            escape: true,
        });
        p.event(&Event::Diverted {
            round: 1,
            pid: 1,
            pe: 0,
            class: 2,
        });
        assert_eq!(p.peak_escape_occupancy(), 2);
        p.event(&Event::Forwarded {
            round: 2,
            pid: 0,
            from: 0,
            to: 1,
            gen: 1,
            escape: true,
        });
        assert_eq!(p.peak_escape_occupancy(), 2);
        assert_eq!(p.escape_occ[0], 1);
    }

    #[test]
    fn custom_buckets_resolve_sub_bucket_deltas() {
        // Default buckets lump depths 3 and 4 into the (2, 4] bucket;
        // unit-wide edges tell them apart.
        let mut coarse = NetProbe::new(2, 1);
        let mut fine = NetProbe::with_buckets(2, 1, DEFAULT_SERIES_CAP, &[1, 2, 3, 4, 5]);
        for depth in [3u32, 4] {
            let ev = Event::Queued {
                round: 0,
                pid: 0,
                pe: 0,
                gen: 1,
                depth,
                escape: false,
            };
            coarse.event(&ev);
            fine.event(&ev);
        }
        assert_eq!(coarse.depth_histogram().counts()[2], 2);
        assert_eq!(fine.depth_histogram().counts()[2], 1);
        assert_eq!(fine.depth_histogram().counts()[3], 1);
        // The default-bucket constructor is byte-identical to passing
        // DEFAULT_DEPTH_BUCKETS explicitly.
        let a = NetProbe::new(2, 1);
        let b = NetProbe::with_buckets(2, 1, DEFAULT_SERIES_CAP, DEFAULT_DEPTH_BUCKETS);
        assert_eq!(a.depth_histogram().render(), b.depth_histogram().render());
    }

    #[test]
    fn tenant_gauges_track_in_flight() {
        let mut p = NetProbe::new(2, 1).with_tenants(vec![0, 0, 1], 2);
        for pid in [0u32, 1] {
            p.event(&Event::Queued {
                round: 0,
                pid,
                pe: 0,
                gen: 1,
                depth: pid + 1,
                escape: false,
            });
        }
        p.event(&Event::Queued {
            round: 0,
            pid: 2,
            pe: 1,
            gen: 1,
            depth: 1,
            escape: false,
        });
        assert_eq!(p.tenant_peak_in_flight(0), 2);
        assert_eq!(p.tenant_peak_in_flight(1), 1);
        p.event(&Event::Delivered {
            round: 3,
            pid: 0,
            pe: 1,
            hops: 1,
        });
        assert_eq!(
            p.registry().gauge_value("tenant0_in_flight").unwrap().get(),
            1
        );
    }
}
