//! The probe trait and its typed event stream.
//!
//! Both `sg-net` engines and the `sg-sched` event loop emit [`Event`]s
//! through a [`Probe`] they are generic over. The associated
//! `ENABLED` constant lets the default [`NullProbe`] path constant-fold
//! every emission site away — instrumentation costs nothing unless a
//! probe is attached.

/// Why a flit (or a whole injection) could not make progress this
/// round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StallKind {
    /// The source PE had no credit to inject (or re-inject) a packet.
    Injection,
    /// A queue head held its slot because the next hop had no credit.
    CreditHead,
}

/// Why a packet left the network without reaching its destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DropReason {
    /// Source or next hop was a dead PE under `FaultPolicy::Drop`.
    Fault,
    /// No route survived the fault plan (BFS reroute failed).
    Unreachable,
    /// Tail-drop: the target queue was at capacity.
    Overflow,
    /// Deadlock detection stranded the packet at its fixed point.
    Stranded,
}

/// One observation from a simulation run, in deterministic
/// reference-scan order.
///
/// All fields are plain integers: PEs are Lehmer ranks (`u32`),
/// generators are `1..n` (`u8`), rounds are simulator rounds (`u32`).
/// Scheduler events reuse `round` for scheduler time.
///
/// `RoundBegin` / `RoundEnd` are emitted *lazily*: a round that
/// produces no other event (only in-flight flits crossing a
/// multi-round link) emits neither, which is what keeps the fast
/// engine's idle-round skipping observationally identical to the
/// reference engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Event {
    /// First event of a round that does something observable.
    RoundBegin {
        /// Simulator round.
        round: u32,
    },
    /// End of an observable round, with the accounting-phase totals.
    RoundEnd {
        /// Simulator round.
        round: u32,
        /// Flits sitting in output queues (and escape banks) after
        /// arbitration — exactly what `total_wait_rounds` charges.
        queued: u64,
        /// Flits crossing links (in some arrival batch).
        in_flight: u64,
        /// Injections stalled at their source this round.
        stalled: u64,
    },
    /// A flit won arbitration and crossed a link.
    Forwarded {
        /// Simulator round.
        round: u32,
        /// Packet id.
        pid: u32,
        /// Link tail PE.
        from: u32,
        /// Link head PE.
        to: u32,
        /// Generator of the link (`1..n`).
        gen: u8,
        /// True when the flit left an escape bank rather than an
        /// adaptive output queue.
        escape: bool,
    },
    /// A flit entered an output queue (or an escape-bank slot).
    Queued {
        /// Simulator round.
        round: u32,
        /// Packet id.
        pid: u32,
        /// PE holding the queue.
        pe: u32,
        /// Generator of the queue (`1..n`).
        gen: u8,
        /// Queue depth after the push (1 for an escape slot).
        depth: u32,
        /// True when the slot is an escape-bank slot.
        escape: bool,
    },
    /// A packet could not make progress this round.
    Stalled {
        /// Simulator round.
        round: u32,
        /// Packet id.
        pid: u32,
        /// PE where the stall happened.
        pe: u32,
        /// What kind of stall.
        kind: StallKind,
    },
    /// A starved adaptive head diverted into the escape bank.
    Diverted {
        /// Simulator round.
        round: u32,
        /// Packet id.
        pid: u32,
        /// PE whose bank absorbed the flit.
        pe: u32,
        /// Residual-hop class of the occupied slot.
        class: u32,
    },
    /// A packet left the network undelivered.
    Dropped {
        /// Simulator round.
        round: u32,
        /// Packet id.
        pid: u32,
        /// PE where the packet died.
        pe: u32,
        /// Why.
        reason: DropReason,
    },
    /// A packet reached its destination.
    Delivered {
        /// Simulator round.
        round: u32,
        /// Packet id.
        pid: u32,
        /// Destination PE.
        pe: u32,
        /// Hops travelled (0 for a self-send).
        hops: u32,
    },
    /// A job entered the scheduler's pending queue.
    JobArrived {
        /// Scheduler time.
        round: u32,
        /// Job id.
        job: u32,
    },
    /// A job was admitted onto a sub-star.
    JobPlaced {
        /// Scheduler time (the job's start).
        round: u32,
        /// Job id.
        job: u32,
        /// Order of the allocated sub-star.
        order: u8,
        /// PEs in the allocated sub-star (`order!`).
        pes: u64,
    },
    /// A job finished and returned its sub-star to the allocator.
    JobReleased {
        /// Scheduler time (the job's finish).
        round: u32,
        /// Job id.
        job: u32,
    },
    /// EASY backfill: the blocked queue head was promised a start
    /// round, computed from the *declared* walltimes of the running
    /// jobs. Under drained release the actual start can come later —
    /// the gap is the scheduler's optimism, measured per job by
    /// [`crate::JobSpan::optimism_gap`].
    JobReserved {
        /// Scheduler time the reservation was computed.
        round: u32,
        /// The reserved (head) job.
        job: u32,
        /// Promised start round.
        start: u32,
    },
    /// A job jumped the FCFS queue (EASY backfill): placed now because
    /// its declared walltime cannot delay the reserved head. Always
    /// paired with a [`Event::JobPlaced`] at the same round.
    JobBackfilled {
        /// Scheduler time.
        round: u32,
        /// Job id.
        job: u32,
    },
}

impl Event {
    /// The round (or scheduler time) the event belongs to.
    #[must_use]
    pub fn round(&self) -> u32 {
        match *self {
            Event::RoundBegin { round }
            | Event::RoundEnd { round, .. }
            | Event::Forwarded { round, .. }
            | Event::Queued { round, .. }
            | Event::Stalled { round, .. }
            | Event::Diverted { round, .. }
            | Event::Dropped { round, .. }
            | Event::Delivered { round, .. }
            | Event::JobArrived { round, .. }
            | Event::JobPlaced { round, .. }
            | Event::JobReleased { round, .. }
            | Event::JobReserved { round, .. }
            | Event::JobBackfilled { round, .. } => round,
        }
    }

    /// Render the event as one newline-free JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        match *self {
            Event::RoundBegin { round } => {
                format!("{{\"ev\":\"round_begin\",\"round\":{round}}}")
            }
            Event::RoundEnd {
                round,
                queued,
                in_flight,
                stalled,
            } => format!(
                "{{\"ev\":\"round_end\",\"round\":{round},\"queued\":{queued},\
                 \"in_flight\":{in_flight},\"stalled\":{stalled}}}"
            ),
            Event::Forwarded {
                round,
                pid,
                from,
                to,
                gen,
                escape,
            } => format!(
                "{{\"ev\":\"forwarded\",\"round\":{round},\"pid\":{pid},\"from\":{from},\
                 \"to\":{to},\"gen\":{gen},\"escape\":{escape}}}"
            ),
            Event::Queued {
                round,
                pid,
                pe,
                gen,
                depth,
                escape,
            } => format!(
                "{{\"ev\":\"queued\",\"round\":{round},\"pid\":{pid},\"pe\":{pe},\
                 \"gen\":{gen},\"depth\":{depth},\"escape\":{escape}}}"
            ),
            Event::Stalled {
                round,
                pid,
                pe,
                kind,
            } => format!(
                "{{\"ev\":\"stalled\",\"round\":{round},\"pid\":{pid},\"pe\":{pe},\
                 \"kind\":\"{}\"}}",
                match kind {
                    StallKind::Injection => "injection",
                    StallKind::CreditHead => "credit_head",
                }
            ),
            Event::Diverted {
                round,
                pid,
                pe,
                class,
            } => format!(
                "{{\"ev\":\"diverted\",\"round\":{round},\"pid\":{pid},\"pe\":{pe},\
                 \"class\":{class}}}"
            ),
            Event::Dropped {
                round,
                pid,
                pe,
                reason,
            } => format!(
                "{{\"ev\":\"dropped\",\"round\":{round},\"pid\":{pid},\"pe\":{pe},\
                 \"reason\":\"{}\"}}",
                match reason {
                    DropReason::Fault => "fault",
                    DropReason::Unreachable => "unreachable",
                    DropReason::Overflow => "overflow",
                    DropReason::Stranded => "stranded",
                }
            ),
            Event::Delivered {
                round,
                pid,
                pe,
                hops,
            } => format!(
                "{{\"ev\":\"delivered\",\"round\":{round},\"pid\":{pid},\"pe\":{pe},\
                 \"hops\":{hops}}}"
            ),
            Event::JobArrived { round, job } => {
                format!("{{\"ev\":\"job_arrived\",\"time\":{round},\"job\":{job}}}")
            }
            Event::JobPlaced {
                round,
                job,
                order,
                pes,
            } => format!(
                "{{\"ev\":\"job_placed\",\"time\":{round},\"job\":{job},\"order\":{order},\
                 \"pes\":{pes}}}"
            ),
            Event::JobReleased { round, job } => {
                format!("{{\"ev\":\"job_released\",\"time\":{round},\"job\":{job}}}")
            }
            Event::JobReserved { round, job, start } => format!(
                "{{\"ev\":\"job_reserved\",\"time\":{round},\"job\":{job},\"start\":{start}}}"
            ),
            Event::JobBackfilled { round, job } => {
                format!("{{\"ev\":\"job_backfilled\",\"time\":{round},\"job\":{job}}}")
            }
        }
    }
}

/// A sink for simulation events.
///
/// Implementations are attached by value (`&mut probe`) and the
/// engines are monomorphized over them, so a probe with
/// `ENABLED = false` erases every emission site at compile time. The
/// trait is deliberately **not** dyn-safe (the associated constant is
/// the whole point); to combine probes, use the tuple impl.
pub trait Probe {
    /// Whether emission sites should run at all. Leave at the default
    /// `true` for any probe that observes anything.
    const ENABLED: bool = true;

    /// Receive one event. Called in deterministic reference-scan
    /// order; must not assume anything about wall-clock time.
    fn event(&mut self, ev: &Event);
}

/// The default probe: observes nothing, costs nothing.
///
/// `ENABLED = false` means every `if P::ENABLED { ... }` emission
/// block in the engines constant-folds to dead code on this path —
/// the unprobed entry points compile to exactly the pre-probe loops.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullProbe;

impl Probe for NullProbe {
    const ENABLED: bool = false;

    #[inline(always)]
    fn event(&mut self, _ev: &Event) {}
}

impl<P: Probe + ?Sized> Probe for &mut P {
    const ENABLED: bool = P::ENABLED;

    #[inline(always)]
    fn event(&mut self, ev: &Event) {
        (**self).event(ev);
    }
}

/// Fan-out: both probes see every event, in tuple order.
impl<A: Probe, B: Probe> Probe for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline(always)]
    fn event(&mut self, ev: &Event) {
        if A::ENABLED {
            self.0.event(ev);
        }
        if B::ENABLED {
            self.1.event(ev);
        }
    }
}

/// A probe that records the raw event stream.
///
/// Unbounded by default; [`EventLog::with_capacity`] bounds memory by
/// dropping (and counting) everything past the cap — useful at
/// `n = 9` scale where a full log would not fit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventLog {
    events: Vec<Event>,
    cap: Option<usize>,
    dropped: u64,
}

impl EventLog {
    /// An unbounded log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A log that keeps at most `cap` events and counts the rest.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            events: Vec::new(),
            cap: Some(cap),
            dropped: 0,
        }
    }

    /// The recorded events, in emission order.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events that arrived past the cap and were not recorded.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render the log as newline-delimited JSON, one event per line.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }
}

impl Probe for EventLog {
    fn event(&mut self, ev: &Event) {
        if self.cap.is_some_and(|c| self.events.len() >= c) {
            self.dropped += 1;
        } else {
            self.events.push(*ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_probe_is_disabled() {
        const {
            assert!(!NullProbe::ENABLED);
            assert!(!<&mut NullProbe as Probe>::ENABLED);
            assert!(!<(NullProbe, NullProbe) as Probe>::ENABLED);
            assert!(<(NullProbe, EventLog) as Probe>::ENABLED);
        }
    }

    #[test]
    fn event_log_caps_and_counts() {
        let mut log = EventLog::with_capacity(2);
        for round in 0..5 {
            log.event(&Event::RoundBegin { round });
        }
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.dropped(), 3);
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let mut log = EventLog::new();
        log.event(&Event::RoundBegin { round: 3 });
        log.event(&Event::Delivered {
            round: 4,
            pid: 7,
            pe: 1,
            hops: 2,
        });
        let text = log.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"ev\":\"round_begin\""));
        assert!(lines[1].contains("\"hops\":2"));
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn tuple_fans_out_in_order() {
        let mut pair = (EventLog::new(), EventLog::new());
        let ev = Event::RoundBegin { round: 1 };
        Probe::event(&mut pair, &ev);
        assert_eq!(pair.0.events(), &[ev]);
        assert_eq!(pair.1.events(), &[ev]);
    }

    #[test]
    fn round_accessor_covers_every_variant() {
        let evs = [
            Event::RoundBegin { round: 9 },
            Event::RoundEnd {
                round: 9,
                queued: 0,
                in_flight: 0,
                stalled: 0,
            },
            Event::JobPlaced {
                round: 9,
                job: 0,
                order: 3,
                pes: 6,
            },
        ];
        for ev in evs {
            assert_eq!(ev.round(), 9);
        }
    }
}
