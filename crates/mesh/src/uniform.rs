//! Uniform meshes and the §4 cost bounds (Theorems 7–9).
//!
//! A *uniform* mesh `U` has `d` dimensions of equal extent `N^{1/d}`.
//! Most classical mesh algorithms assume uniformity; the paper's §4
//! asks how well the decidedly non-uniform `D_n = 2 × 3 × ⋯ × n` (and
//! hence the star graph) can simulate `U`:
//!
//! * **Theorem 7** (`[ATAL88]`, `d = O(1)`): rectangular `R` simulates
//!   `U` with per-step slowdown `O((max_i l_i)/N^{1/d})`.
//! * **Theorem 8** (the paper's `d`-aware refinement): slowdown
//!   `O((max_i l_i) · 2^d / N^{1/d})`.
//! * **Theorem 9**: a step of the `(n−1)`-dimensional uniform mesh
//!   costs `O(N^{n/log₂² N})` steps on the star graph.

use crate::shape::MeshShape;

/// Uniform mesh `U`: `d` dimensions of extent `side`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformMesh {
    /// Dimensions.
    pub d: usize,
    /// Per-dimension extent `N^{1/d}`.
    pub side: usize,
}

impl UniformMesh {
    /// Creates a `side^d` uniform mesh.
    ///
    /// # Panics
    /// Panics if `d == 0` or `side == 0`.
    #[must_use]
    pub fn new(d: usize, side: usize) -> Self {
        assert!(d > 0 && side > 0, "degenerate uniform mesh");
        UniformMesh { d, side }
    }

    /// The nearest uniform mesh to `N` nodes in `d` dimensions:
    /// `side = round(N^{1/d})` (the paper treats `N^{1/d}` as exact;
    /// we must pick an integer).
    #[must_use]
    pub fn nearest(n_nodes: u64, d: usize) -> Self {
        assert!(d > 0, "degenerate uniform mesh");
        let side = (n_nodes as f64).powf(1.0 / d as f64).round().max(1.0) as usize;
        UniformMesh { d, side }
    }

    /// Total nodes `side^d`.
    #[must_use]
    pub fn size(&self) -> u64 {
        (self.side as u64).pow(self.d as u32)
    }

    /// As a general [`MeshShape`].
    #[must_use]
    pub fn shape(&self) -> MeshShape {
        MeshShape::new(&vec![self.side; self.d]).expect("valid")
    }
}

/// Theorem 7 per-step slowdown: `(max_i l_i) / N^{1/d}` (constant
/// factors dropped), valid for `d = O(1)`.
#[must_use]
pub fn thm7_slowdown(r: &MeshShape) -> f64 {
    let d = r.dims();
    let max_l = r.extents().iter().copied().max().expect("nonempty") as f64;
    let n = r.size() as f64;
    max_l / n.powf(1.0 / d as f64)
}

/// Theorem 8 per-step slowdown: `(max_i l_i) · 2^d / N^{1/d}`.
#[must_use]
pub fn thm8_slowdown(r: &MeshShape) -> f64 {
    thm7_slowdown(r) * (2.0f64).powi(r.dims() as i32)
}

/// Theorem 9's headline exponent: simulating the `(n−1)`-dimensional
/// uniform mesh on `D_n` costs `O(N^{n/log₂² N})` per step. Returns
/// `log₂` of the bound, i.e. `n · log₂ N / log₂² N = n / log₂ N`,
/// times `log₂ N` … concretely: `log₂(slowdown) = n/log₂N · log₂N`
/// simplified to `n²/log₂N`… we evaluate the pre-simplification form
/// `2^{n-1} · (n−1) / N^{1/(n−1)}` directly (the paper's derivation
/// step "`O(2^{n−1} n / N^{1/(n−1)})`") and return its `log₂`.
#[must_use]
pub fn thm9_slowdown_log2(n: usize) -> f64 {
    let log2_nfact: f64 = (2..=n).map(|k| (k as f64).log2()).sum();
    // log2( 2^(n-1) * (n-1) / N^(1/(n-1)) )
    (n as f64 - 1.0) + ((n - 1) as f64).log2() - log2_nfact / (n as f64 - 1.0)
}

/// The paper's simplified Theorem-9 form: the slowdown
/// `O(N^{n/log₂ N})` equals `O(2^n)` exactly (since
/// `N^{n/log₂N} = 2^{log₂N · n/log₂N} = 2^n` with `N = n!`), so its
/// `log₂` is simply `n`. Kept as a named function so the table
/// regenerator can print both the explicit Theorem-8 form and this
/// envelope side by side.
#[must_use]
pub fn thm9_approx_log2(n: usize) -> f64 {
    n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factorization::factorize;

    #[test]
    fn uniform_size_and_shape() {
        let u = UniformMesh::new(3, 4);
        assert_eq!(u.size(), 64);
        assert_eq!(u.shape().extents(), &[4, 4, 4]);
        assert_eq!(u.shape().diameter(), 9);
    }

    #[test]
    fn nearest_rounds_sensibly() {
        // 720 nodes in 2D: side = round(26.83) = 27.
        let u = UniformMesh::nearest(720, 2);
        assert_eq!(u.side, 27);
        // In 5D: round(720^0.2) = round(3.72) = 4.
        let u5 = UniformMesh::nearest(720, 5);
        assert_eq!(u5.side, 4);
    }

    #[test]
    fn thm7_slowdown_is_one_for_uniform_meshes() {
        let u = UniformMesh::new(3, 5).shape();
        assert!((thm7_slowdown(&u) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn thm8_adds_2_to_the_d() {
        let u = UniformMesh::new(4, 3).shape();
        assert!((thm8_slowdown(&u) - 16.0).abs() < 1e-9);
    }

    #[test]
    fn appendix_factorizations_have_modest_thm8_slowdown() {
        // The whole point of the Appendix: for the balanced d-dim
        // factorizations, the Theorem-8 slowdown at small d is far
        // below the d = n-1 blow-up.
        for n in 6..=10usize {
            let d_small = 2;
            let r_small = MeshShape::new(
                &factorize(n, d_small)
                    .iter()
                    .map(|&x| x as usize)
                    .collect::<Vec<_>>(),
            )
            .unwrap();
            let r_full = MeshShape::new(&(2..=n).collect::<Vec<_>>()).unwrap();
            assert!(
                thm8_slowdown(&r_small) < thm8_slowdown(&r_full),
                "n={n}: {} !< {}",
                thm8_slowdown(&r_small),
                thm8_slowdown(&r_full)
            );
        }
    }

    #[test]
    fn thm9_slowdown_grows_roughly_like_2_to_n() {
        // log2 slowdown ≈ (n-1) + log2(n-1) - log2(n!)/(n-1): dominated
        // by the 2^{n-1} term — strictly increasing and near-linear.
        let mut prev = thm9_slowdown_log2(4);
        for n in 5..=14 {
            let cur = thm9_slowdown_log2(n);
            assert!(cur > prev, "n={n}");
            assert!(cur > 0.6 * (n as f64 - 1.0));
            prev = cur;
        }
    }

    #[test]
    fn thm9_forms_agree_in_shape() {
        // Explicit 2^{n-1}(n-1)/N^{1/(n-1)} vs the O(2^n) envelope:
        // log2 values stay within a few bits of each other.
        for n in 5..=14usize {
            let explicit = thm9_slowdown_log2(n);
            let envelope = thm9_approx_log2(n);
            assert!(
                (explicit - envelope).abs() < 4.0,
                "n={n}: {explicit} vs {envelope}"
            );
        }
    }
}
