//! The paper's mesh `D_n` of shape `2 × 3 × 4 × ⋯ × n`.
//!
//! `D_n` has `n−1` dimensions with `l_i = i + 1` (dimension `i` holds
//! coordinates `0..=i`), hence `|D_n| = n!` — the same cardinality as
//! the star graph `S_n`, which is what makes an expansion-1 embedding
//! possible. Its node indices coincide with *factoradic* values:
//! `index(d) = Σ d_i · i!`.

use crate::coords::{MeshError, MeshPoint};
use crate::shape::MeshShape;
use sg_perm::factorial::factorial;
use sg_perm::MAX_N;

/// The mesh `D_n` (paper §3.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnMesh {
    n: usize,
    shape: MeshShape,
}

impl DnMesh {
    /// Creates `D_n` for `2 ≤ n ≤ 20`.
    ///
    /// # Panics
    /// Panics outside that range (`n = 2` is the 1-dimensional mesh of
    /// two nodes; `n!` must fit in `u64`).
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!((2..=MAX_N).contains(&n), "D_n requires 2 <= n <= {MAX_N}");
        let extents: Vec<usize> = (2..=n).collect();
        DnMesh {
            n,
            shape: MeshShape::new(&extents).expect("valid extents"),
        }
    }

    /// The star-graph order `n` this mesh pairs with.
    #[inline]
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Underlying general mesh shape (`n−1` dimensions).
    #[inline]
    #[must_use]
    pub fn shape(&self) -> &MeshShape {
        &self.shape
    }

    /// Number of dimensions: `n − 1`.
    #[inline]
    #[must_use]
    pub fn dims(&self) -> usize {
        self.n - 1
    }

    /// Number of nodes: `n!`.
    #[inline]
    #[must_use]
    pub fn node_count(&self) -> u64 {
        factorial(self.n)
    }

    /// Maximum node degree `2n − 3`, attained by `(1, 1, …, 1)`
    /// (used in the paper's Lemma 1).
    #[inline]
    #[must_use]
    pub fn max_degree(&self) -> usize {
        2 * self.n - 3
    }

    /// Node index of a point — equal to its factoradic value.
    ///
    /// # Panics
    /// Panics if the point is outside `D_n`.
    #[must_use]
    pub fn index_of(&self, p: &MeshPoint) -> u64 {
        self.shape.index_of(p)
    }

    /// Point with the given index.
    ///
    /// # Panics
    /// Panics if `idx >= n!`.
    #[must_use]
    pub fn point_at(&self, idx: u64) -> MeshPoint {
        self.shape.point_at(idx)
    }

    /// Converts a point to factoradic digits `[0, d_1, d_2, …, d_{n−1}]`
    /// (digit `i` is the paper's `d_i`; digit 0 is structurally 0).
    ///
    /// # Errors
    /// Propagates validation failures.
    pub fn to_digits(&self, p: &MeshPoint) -> Result<Vec<u8>, MeshError> {
        self.shape.check(p)?;
        let mut digits = vec![0u8; self.n];
        for (k, &c) in p.ascending().iter().enumerate() {
            digits[k + 1] = c as u8;
        }
        Ok(digits)
    }

    /// Builds a point from factoradic digits (inverse of
    /// [`DnMesh::to_digits`]).
    ///
    /// # Panics
    /// Panics if the digit vector has the wrong length or an out-of-
    /// range digit.
    #[must_use]
    pub fn from_digits(&self, digits: &[u8]) -> MeshPoint {
        assert_eq!(digits.len(), self.n, "need n digits (digit 0 unused)");
        assert_eq!(digits[0], 0, "digit 0 has radix 1");
        let coords: Vec<u32> = digits[1..].iter().map(|&d| u32::from(d)).collect();
        let p = MeshPoint::from_ascending(&coords).expect("nonempty");
        self.shape.check(&p).expect("digit out of range");
        p
    }

    /// Iterator over all points in index (= factoradic) order.
    pub fn points(&self) -> impl Iterator<Item = MeshPoint> + '_ {
        self.shape.points()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_perm::factorial::{from_factoradic, to_factoradic};

    #[test]
    fn d4_matches_figure3_shape() {
        let d4 = DnMesh::new(4);
        assert_eq!(d4.dims(), 3);
        assert_eq!(d4.node_count(), 24);
        assert_eq!(d4.shape().extents(), &[2, 3, 4]);
        assert_eq!(d4.max_degree(), 5);
    }

    #[test]
    fn index_equals_factoradic_value() {
        let d5 = DnMesh::new(5);
        for idx in 0..d5.node_count() {
            let p = d5.point_at(idx);
            let digits = d5.to_digits(&p).unwrap();
            assert_eq!(from_factoradic(&digits).unwrap(), idx);
            let digits2 = to_factoradic(idx, 5).unwrap();
            assert_eq!(digits, digits2);
            assert_eq!(d5.from_digits(&digits), p);
        }
    }

    #[test]
    fn all_ones_attains_max_degree() {
        // Lemma 1's witness: node (1,1,…,1) has degree 2n-3.
        for n in 3..=7usize {
            let dn = DnMesh::new(n);
            let ones = MeshPoint::from_ascending(&vec![1; n - 1]).unwrap();
            assert_eq!(dn.shape().degree(&ones), dn.max_degree(), "n={n}");
            assert_eq!(dn.shape().max_degree(), dn.max_degree(), "n={n}");
        }
    }

    #[test]
    fn lemma1_degree_inequality() {
        // 2n - 3 > n - 1  ⟺  n > 2: no dilation-1 embedding beyond n=2.
        assert!(DnMesh::new(2).max_degree() <= 1); // n=2: degree 1 <= star degree 1
        for n in 3..=10usize {
            assert!(DnMesh::new(n).max_degree() > n - 1, "n={n}");
        }
    }

    #[test]
    fn point_count_matches_iterator() {
        let d4 = DnMesh::new(4);
        assert_eq!(d4.points().count() as u64, d4.node_count());
    }

    #[test]
    #[should_panic(expected = "D_n requires")]
    fn rejects_n1() {
        let _ = DnMesh::new(1);
    }
}
