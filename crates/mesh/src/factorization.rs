//! The Appendix's factorization of `2·3⋯n` into `d` extents.
//!
//! The paper shows the `(n−1)`-dimensional mesh `2 × 3 × ⋯ × n` can
//! simulate a `d`-dimensional mesh `l_1 × l_2 × ⋯ × l_d` in `O(1)`
//! time, where the factors `{2, …, n}` are dealt round-robin:
//!
//! ```text
//! l_1 = n · (n−d) · (n−2d) ⋯          (down to ≥ 2, step d)
//! l_2 = (n−1) · (n−1−d) ⋯
//! …
//! l_d = (n−d+1) · (n−d+1−d) ⋯
//! ```
//!
//! with the balance bound `l_1/l_d < n·(1 + n mod d)` and, for
//! algorithms costing `O(N^{1/d})` mesh steps, an optimal simulation
//! dimension near `½·√(log₂ N)`.

/// Round-robin factorization of `{2, …, n}` into `d` extents
/// `[l_1, …, l_d]` per the Appendix.
///
/// # Panics
/// Panics unless `1 ≤ d ≤ n−1` and `n ≤ 20`.
#[must_use]
pub fn factorize(n: usize, d: usize) -> Vec<u64> {
    assert!((2..=20).contains(&n), "need 2 <= n <= 20");
    assert!(d >= 1 && d < n, "need 1 <= d <= n-1");
    let mut extents = vec![1u64; d];
    for (k, extent) in extents.iter_mut().enumerate() {
        // l_{k+1} takes factors n-k, n-k-d, n-k-2d, … while >= 2.
        let mut f = n as i64 - k as i64;
        while f >= 2 {
            *extent *= f as u64;
            f -= d as i64;
        }
    }
    extents
}

/// The Appendix's balance bound: `l_1/l_d < n·(1 + n mod d)`.
#[must_use]
pub fn balance_bound(n: usize, d: usize) -> f64 {
    (n as f64) * (1.0 + (n % d) as f64)
}

/// Measured imbalance `l_1 / l_d` of a factorization.
#[must_use]
pub fn imbalance(extents: &[u64]) -> f64 {
    let l1 = *extents.first().expect("nonempty") as f64;
    let ld = *extents.last().expect("nonempty") as f64;
    l1 / ld
}

/// Cost model for simulating an `O(N^{1/d})`-step `d`-dimensional
/// uniform mesh algorithm on the star graph `S_n` via the Appendix
/// construction: per-step slowdown `O(d · 2^d · N^{1/d})` times
/// `O(N^{1/d})` steps ⇒ total `O(d · 2^d · N^{2/d})`.
///
/// Returns `log₂` of the cost (the raw value overflows `f64` fast).
#[must_use]
pub fn simulation_cost_log2(n: usize, d: usize) -> f64 {
    let log2_n_total = (2..=n).map(|k| (k as f64).log2()).sum::<f64>(); // log2(n!)
    (d as f64).log2() + d as f64 + 2.0 * log2_n_total / d as f64
}

/// Sweeps all `d` and returns `(d, log₂ cost)` pairs plus the argmin —
/// the paper's "optimal dimension for direct simulation", expected
/// near `½·√(log₂ N)`.
#[must_use]
pub fn optimal_dimension_sweep(n: usize) -> (Vec<(usize, f64)>, usize) {
    let sweep: Vec<(usize, f64)> = (1..n).map(|d| (d, simulation_cost_log2(n, d))).collect();
    let best = sweep
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("nonempty")
        .0;
    (sweep, best)
}

/// Predicted optimal simulation dimension, `Θ(√(log₂ N))` with
/// `N = n!`.
///
/// The paper states the optimum as "`½√(log N)`", but minimizing its
/// own cost `d · 2^d · N^{2/d}` — i.e. `log₂d + d + 2 log₂N / d` —
/// gives `d* ≈ √(2 log₂ N)` (setting the derivative `1 − 2L/d² ≈ 0`).
/// The Θ-class is identical; only the constant differs. We return the
/// true minimizer; the deviation is recorded in EXPERIMENTS.md, and
/// [`paper_predicted_optimal_dimension`] preserves the paper's
/// literal constant for side-by-side tables.
#[must_use]
pub fn predicted_optimal_dimension(n: usize) -> f64 {
    let log2_n_total = (2..=n).map(|k| (k as f64).log2()).sum::<f64>();
    (2.0 * log2_n_total).sqrt()
}

/// The paper's literal "`½√(log N)`" prediction (see
/// [`predicted_optimal_dimension`] for why the constant is off).
#[must_use]
pub fn paper_predicted_optimal_dimension(n: usize) -> f64 {
    let log2_n_total = (2..=n).map(|k| (k as f64).log2()).sum::<f64>();
    0.5 * log2_n_total.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_perm::factorial::factorial;

    #[test]
    fn products_equal_n_factorial() {
        for n in 2..=14usize {
            for d in 1..n {
                let ext = factorize(n, d);
                assert_eq!(ext.len(), d);
                let prod: u64 = ext.iter().product();
                assert_eq!(prod, factorial(n), "n={n} d={d}");
            }
        }
    }

    #[test]
    fn d_equals_one_gives_n_factorial_line() {
        assert_eq!(factorize(5, 1), vec![120]);
    }

    #[test]
    fn d_equals_n_minus_one_recovers_dn() {
        // The degenerate factorization is the original extents, descending.
        assert_eq!(factorize(5, 4), vec![5, 4, 3, 2]);
    }

    #[test]
    fn paper_example_shapes() {
        // n=4, d=2: l1 = 4*2 = 8, l2 = 3.
        assert_eq!(factorize(4, 2), vec![8, 3]);
        // n=5, d=2: l1 = 5*3 = 15, l2 = 4*2 = 8.
        assert_eq!(factorize(5, 2), vec![15, 8]);
        // n=7, d=3: l1 = 7*4 = 28, l2 = 6*3 = 18, l3 = 5*2 = 10.
        assert_eq!(factorize(7, 3), vec![28, 18, 10]);
    }

    #[test]
    fn extents_are_monotone_decreasing() {
        for n in 3..=14usize {
            for d in 1..n {
                let ext = factorize(n, d);
                for w in ext.windows(2) {
                    assert!(w[0] >= w[1], "n={n} d={d} {ext:?}");
                }
            }
        }
    }

    #[test]
    fn balance_bound_holds() {
        // Appendix: l1/ld < n(1 + n mod d).
        for n in 3..=14usize {
            for d in 1..n {
                let ext = factorize(n, d);
                assert!(
                    imbalance(&ext) < balance_bound(n, d),
                    "n={n} d={d}: {} !< {}",
                    imbalance(&ext),
                    balance_bound(n, d)
                );
            }
        }
    }

    #[test]
    fn optimal_dimension_is_interior_and_near_prediction() {
        // For reasonably large n the best d is neither 1 nor n-1, and
        // tracks ½√(log₂ N) loosely (the paper's asymptotic claim).
        for n in 8..=14usize {
            let (sweep, best) = optimal_dimension_sweep(n);
            assert!(best > 1 && best < n - 1, "n={n} best={best}");
            let predicted = predicted_optimal_dimension(n);
            assert!(
                (best as f64 - predicted).abs() <= 2.0,
                "n={n}: best {best} vs predicted {predicted:.2}"
            );
            // The Θ-class claim: both predictions scale as √(log N).
            assert!(paper_predicted_optimal_dimension(n) * 4.0 > predicted);
            // Sanity: the sweep is convex-ish — endpoints are worse.
            assert!(sweep[0].1 > sweep[best - 1].1);
            assert!(sweep[n - 2].1 > sweep[best - 1].1);
        }
    }

    #[test]
    #[should_panic(expected = "need 1 <= d <= n-1")]
    fn rejects_d_too_large() {
        let _ = factorize(4, 4);
    }
}
