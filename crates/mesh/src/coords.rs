//! Mesh coordinate tuples.

use core::fmt;

/// A point of an `m`-dimensional mesh.
///
/// The paper writes mesh nodes as `(d_m, d_{m-1}, …, d_1)` — most
/// significant dimension first. [`MeshPoint::new`] takes exactly that
/// display order; internally coordinates are stored ascending
/// (`coords[k] = d_{k+1}`), matching mixed-radix node indices where
/// dimension 1 varies fastest.
///
/// ```
/// use sg_mesh::MeshPoint;
/// let p = MeshPoint::new(&[3, 0, 1]).unwrap(); // the paper's (3,0,1)
/// assert_eq!(p.d(1), 1);
/// assert_eq!(p.d(3), 3);
/// assert_eq!(p.to_string(), "(3,0,1)");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MeshPoint {
    coords: Vec<u32>,
}

/// Errors constructing mesh points / shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeshError {
    /// Empty coordinate / extent list.
    Empty,
    /// A coordinate is out of range for its dimension's extent.
    CoordOutOfRange {
        /// 1-based dimension index.
        dim: usize,
        /// Offending coordinate.
        coord: u32,
        /// Extent of that dimension.
        extent: usize,
    },
    /// An extent of zero was supplied.
    ZeroExtent {
        /// 1-based dimension index.
        dim: usize,
    },
    /// Dimension count mismatch between a point and a shape.
    DimMismatch {
        /// dimensions of the point
        point: usize,
        /// dimensions of the shape
        shape: usize,
    },
    /// A node index `>=` the shape's size.
    IndexOutOfRange {
        /// Offending index.
        index: u64,
        /// Shape size.
        size: u64,
    },
    /// Shape size overflows `u64`.
    TooLarge,
}

impl fmt::Display for MeshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeshError::Empty => write!(f, "mesh needs at least one dimension"),
            MeshError::CoordOutOfRange { dim, coord, extent } => {
                write!(f, "coordinate d_{dim} = {coord} out of range 0..{extent}")
            }
            MeshError::ZeroExtent { dim } => write!(f, "dimension {dim} has extent 0"),
            MeshError::DimMismatch { point, shape } => {
                write!(f, "point has {point} dimensions, shape has {shape}")
            }
            MeshError::IndexOutOfRange { index, size } => {
                write!(f, "node index {index} >= mesh size {size}")
            }
            MeshError::TooLarge => write!(f, "mesh size overflows u64"),
        }
    }
}

impl std::error::Error for MeshError {}

impl MeshPoint {
    /// Builds a point from the paper's display order
    /// `(d_m, …, d_1)` (most significant first).
    ///
    /// # Errors
    /// [`MeshError::Empty`] on an empty slice.
    pub fn new(display_order: &[u32]) -> Result<Self, MeshError> {
        if display_order.is_empty() {
            return Err(MeshError::Empty);
        }
        let mut coords = display_order.to_vec();
        coords.reverse();
        Ok(MeshPoint { coords })
    }

    /// Builds a point from ascending dimension order
    /// (`coords[k] = d_{k+1}`, dimension 1 first).
    ///
    /// # Errors
    /// [`MeshError::Empty`] on an empty slice.
    pub fn from_ascending(coords: &[u32]) -> Result<Self, MeshError> {
        if coords.is_empty() {
            return Err(MeshError::Empty);
        }
        Ok(MeshPoint {
            coords: coords.to_vec(),
        })
    }

    /// Number of dimensions `m`.
    #[inline]
    #[must_use]
    pub fn dims(&self) -> usize {
        self.coords.len()
    }

    /// Coordinate along dimension `i` (1-based, the paper's `d_i`).
    ///
    /// # Panics
    /// Panics if `i` is 0 or exceeds the dimension count.
    #[inline]
    #[must_use]
    pub fn d(&self, i: usize) -> u32 {
        assert!(
            i >= 1 && i <= self.coords.len(),
            "dimension {i} out of range"
        );
        self.coords[i - 1]
    }

    /// Ascending coordinate slice (`[d_1, d_2, …]`).
    #[inline]
    #[must_use]
    pub fn ascending(&self) -> &[u32] {
        &self.coords
    }

    /// Returns a copy with `d_i` replaced by `value`.
    #[must_use]
    pub fn with_d(&self, i: usize, value: u32) -> Self {
        assert!(
            i >= 1 && i <= self.coords.len(),
            "dimension {i} out of range"
        );
        let mut c = self.clone();
        c.coords[i - 1] = value;
        c
    }

    /// L1 (Manhattan) distance to another point of the same
    /// dimensionality — the mesh hop distance.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn l1_distance(&self, other: &Self) -> u64 {
        assert_eq!(self.dims(), other.dims(), "dimension mismatch");
        self.coords
            .iter()
            .zip(&other.coords)
            .map(|(&a, &b)| u64::from(a.abs_diff(b)))
            .sum()
    }
}

impl fmt::Debug for MeshPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Displays in the paper's style: `(d_m,…,d_1)`.
impl fmt::Display for MeshPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (k, c) in self.coords.iter().rev().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrips_paper_order() {
        let p = MeshPoint::new(&[2, 1, 0, 1]).unwrap();
        assert_eq!(p.to_string(), "(2,1,0,1)");
        assert_eq!(p.d(1), 1);
        assert_eq!(p.d(2), 0);
        assert_eq!(p.d(3), 1);
        assert_eq!(p.d(4), 2);
    }

    #[test]
    fn ascending_and_display_agree() {
        let p = MeshPoint::new(&[3, 0, 1]).unwrap();
        assert_eq!(p.ascending(), &[1, 0, 3]);
        let q = MeshPoint::from_ascending(&[1, 0, 3]).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn with_d_replaces_single_coordinate() {
        let p = MeshPoint::new(&[3, 0, 1]).unwrap();
        let q = p.with_d(2, 2);
        assert_eq!(q.to_string(), "(3,2,1)");
        assert_eq!(p.to_string(), "(3,0,1)"); // original untouched
    }

    #[test]
    fn l1_distance() {
        let a = MeshPoint::new(&[0, 0, 0]).unwrap();
        let b = MeshPoint::new(&[3, 2, 1]).unwrap();
        assert_eq!(a.l1_distance(&b), 6);
        assert_eq!(b.l1_distance(&a), 6);
        assert_eq!(a.l1_distance(&a), 0);
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(MeshPoint::new(&[]), Err(MeshError::Empty));
        assert_eq!(MeshPoint::from_ascending(&[]), Err(MeshError::Empty));
    }
}
