//! Empirical U-on-R simulation (`[ATAL88]`, paper §4).
//!
//! Theorems 7–8 bound the cost of simulating a uniform mesh `U`
//! (extent `u` in each of `d` dimensions) on a rectangular mesh `R`
//! (`l_1 × ⋯ × l_d`). The simulation maps `U` onto `R` by proportional
//! coordinate scaling — `x_i ↦ ⌊x_i · l_i / u⌋` — so each `R` node
//! hosts a contiguous block of `U` nodes, and a `U` unit route becomes
//! block-internal moves (free) plus messages crossing block boundaries
//! (serialized per `R` edge, one per unit route).
//!
//! This module *measures* that cost: for each `U` dimension it counts
//! the maximum number of messages any single directed `R` edge must
//! carry — the number of `R` unit routes needed under store-and-
//! forward — so the paper's asymptotic claims get concrete numbers.

use crate::coords::MeshPoint;
use crate::shape::MeshShape;
use crate::uniform::UniformMesh;
use std::collections::HashMap;

/// The block mapping from a uniform mesh onto a rectangular mesh of
/// the same dimensionality.
#[derive(Debug, Clone)]
pub struct BlockMap {
    /// The uniform source mesh `U`.
    pub u: UniformMesh,
    /// The rectangular target mesh `R`.
    pub r: MeshShape,
}

impl BlockMap {
    /// Creates the proportional block mapping. Extents of `R` may be
    /// smaller *or larger* than `U`'s side: a shorter `R` dimension
    /// packs several `U` layers per node, a longer one stretches a `U`
    /// hop across several `R` edges (both occur for the Appendix
    /// factorizations, e.g. `48 × 15` vs `27 × 27`).
    ///
    /// # Panics
    /// Panics if dimensionalities differ.
    #[must_use]
    pub fn new(u: UniformMesh, r: MeshShape) -> Self {
        assert_eq!(u.d, r.dims(), "U and R must have equal dimensionality");
        BlockMap { u, r }
    }

    /// Image in `R` of the `U` point with ascending coordinates `x`.
    #[must_use]
    pub fn map_ascending(&self, x: &[u32]) -> MeshPoint {
        debug_assert_eq!(x.len(), self.u.d);
        let coords: Vec<u32> = x
            .iter()
            .enumerate()
            .map(|(k, &xi)| ((xi as u64 * self.r.extent(k + 1) as u64) / self.u.side as u64) as u32)
            .collect();
        MeshPoint::from_ascending(&coords).expect("nonempty")
    }

    /// Per-`R`-node load statistics `(min, max)` over all `R` nodes —
    /// Theorem 7's `O(…)` hides exactly this max.
    ///
    /// Enumerates all `u^d` nodes of `U`; intended for laptop-scale
    /// shapes (`u^d ≲ 10⁷`).
    #[must_use]
    pub fn load_stats(&self) -> (u64, u64) {
        let mut load: HashMap<u64, u64> = HashMap::new();
        let ushape = self.u.shape();
        for idx in 0..ushape.size() {
            let x = ushape.point_at(idx);
            let rpt = self.map_ascending(x.ascending());
            *load.entry(self.r.index_of(&rpt)).or_insert(0) += 1;
        }
        // R nodes receiving no U node count as zero load.
        let populated = load.len() as u64;
        let min = if populated < self.r.size() {
            0
        } else {
            *load.values().min().expect("nonempty")
        };
        let max = *load.values().max().expect("nonempty");
        (min, max)
    }

    /// Measures the `R` unit routes required to simulate one `U` unit
    /// route along dimension `dim` (1-based) in the `+` direction:
    /// the maximum, over directed `R` edges, of `U` messages crossing
    /// that edge (block-internal messages are free). A message whose
    /// image moves several `R` hops (stretched dimension) loads every
    /// edge on its segment.
    ///
    /// Enumerates all `u^d` messages; laptop-scale shapes only.
    #[must_use]
    pub fn route_congestion(&self, dim: usize) -> u64 {
        assert!(dim >= 1 && dim <= self.u.d, "dimension out of range");
        let ushape = self.u.shape();
        let mut crossing: HashMap<(u64, u32), u64> = HashMap::new();
        for idx in 0..ushape.size() {
            let x = ushape.point_at(idx);
            if x.d(dim) as usize + 1 >= self.u.side {
                continue; // boundary: no message
            }
            let src_r = self.map_ascending(x.ascending());
            let dst_u = x.with_d(dim, x.d(dim) + 1);
            let dst_r = self.map_ascending(dst_u.ascending());
            // Images differ only along `dim` (per-dimension scaling).
            let (a, b) = (src_r.d(dim), dst_r.d(dim));
            debug_assert!(a <= b);
            for c in a..b {
                // Directed edge (…, c, …) -> (…, c+1, …) along `dim`,
                // keyed by the base node index and the coordinate.
                let key = (self.r.index_of(&src_r.with_d(dim, 0)), c);
                *crossing.entry(key).or_insert(0) += 1;
            }
        }
        crossing.values().copied().max().unwrap_or(0)
    }

    /// Worst-case measured slowdown over all dimensions.
    #[must_use]
    pub fn worst_route_congestion(&self) -> u64 {
        (1..=self.u.d)
            .map(|dim| self.route_congestion(dim))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factorization::factorize;
    use crate::uniform::thm8_slowdown;

    fn rshape(extents: &[u64]) -> MeshShape {
        MeshShape::new(&extents.iter().map(|&x| x as usize).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn identity_mapping_when_equal() {
        // U = R: every block holds exactly one node; zero crossing cost
        // means one R route per U route (congestion 1).
        let u = UniformMesh::new(2, 6);
        let map = BlockMap::new(u, rshape(&[6, 6]));
        assert_eq!(map.load_stats(), (1, 1));
        assert_eq!(map.route_congestion(1), 1);
        assert_eq!(map.route_congestion(2), 1);
    }

    #[test]
    fn blocks_are_contiguous_and_monotone() {
        let u = UniformMesh::new(1, 10);
        let map = BlockMap::new(u, rshape(&[4]));
        let images: Vec<u32> = (0..10).map(|x| map.map_ascending(&[x]).d(1)).collect();
        // Non-decreasing, covers 0..4.
        assert!(images.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(images[0], 0);
        assert_eq!(images[9], 3);
    }

    #[test]
    fn load_balance_within_factor_two() {
        let u = UniformMesh::new(2, 9);
        let map = BlockMap::new(u, rshape(&[4, 3]));
        let (min, max) = map.load_stats();
        assert!(min >= 1);
        assert!(max <= 2 * min.max(1) + 2, "min={min} max={max}");
        // Total conservation: 81 U nodes distributed.
        assert_eq!(u.size(), 81);
    }

    #[test]
    fn congestion_grows_with_block_cross_section() {
        // 1D: blocks of ~u/l nodes; exactly one message crosses each
        // block boundary, so congestion 1.
        let u1 = UniformMesh::new(1, 12);
        let m1 = BlockMap::new(u1, rshape(&[3]));
        assert_eq!(m1.route_congestion(1), 1);

        // 2D 12x12 on 3x3: each block is 4x4; messages crossing a
        // vertical boundary = 4 (the cross-section).
        let u2 = UniformMesh::new(2, 12);
        let m2 = BlockMap::new(u2, rshape(&[3, 3]));
        assert_eq!(m2.route_congestion(1), 4);
        assert_eq!(m2.route_congestion(2), 4);
    }

    #[test]
    fn appendix_2d_factorization_beats_full_dimension() {
        // n = 6, N = 720. The Appendix's d = 2 factorization is
        // 48 × 15; the nearest 2-D uniform mesh is 27 × 27. Measured
        // slowdown should be a small constant, far below the
        // Theorem-8 bound for simulating the full (n-1)-dimensional
        // uniform mesh on D_6 — the paper's motivation for dropping
        // to a lower dimension.
        let n = 6;
        let ext = factorize(n, 2);
        assert_eq!(ext, vec![48, 15]);
        let u = UniformMesh::nearest(720, 2); // 27 x 27
        let map = BlockMap::new(u, rshape(&ext));
        let measured = map.worst_route_congestion();
        assert!(measured >= 1);
        let bound_full_d = thm8_slowdown(&MeshShape::new(&(2..=n).collect::<Vec<_>>()).unwrap());
        assert!(
            (measured as f64) < bound_full_d,
            "measured {measured} vs full-d Theorem-8 bound {bound_full_d}"
        );
    }

    #[test]
    #[should_panic(expected = "equal dimensionality")]
    fn dimension_mismatch_rejected() {
        let _ = BlockMap::new(UniformMesh::new(2, 4), rshape(&[4]));
    }
}
