//! # sg-mesh — mesh topologies
//!
//! The mesh side of the paper's embedding:
//!
//! * [`shape::MeshShape`] — general `m`-dimensional mixed-radix mesh
//!   shapes (§2 item 3), index ↔ coordinate conversion, neighbors;
//! * [`coords::MeshPoint`] — coordinate tuples in the paper's
//!   `(d_m, …, d_1)` display convention;
//! * [`dn::DnMesh`] — the paper's mesh `D_n` of shape `2 × 3 × ⋯ × n`
//!   whose node indices coincide with factoradic values;
//! * [`uniform`] — uniform meshes `U = N^{1/d} × ⋯ × N^{1/d}` and the
//!   block mapping used to simulate them on rectangular meshes
//!   (§4, Theorems 7–9);
//! * [`factorization`] — the Appendix's factorization of
//!   `2·3⋯n` into `d` balanced extents and the optimal-dimension
//!   cost model;
//! * [`atallah`] — empirical route-congestion measurement for the
//!   U-on-R simulation (`[ATAL88]`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atallah;
pub mod coords;
pub mod dn;
pub mod factorization;
pub mod shape;
pub mod uniform;

pub use coords::MeshPoint;
pub use dn::DnMesh;
pub use shape::MeshShape;
