//! General mixed-radix mesh shapes (§2 item 3).

use crate::coords::{MeshError, MeshPoint};

/// Direction of movement along a mesh dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// `d_i ↦ d_i + 1`.
    Plus,
    /// `d_i ↦ d_i − 1`.
    Minus,
}

impl Sign {
    /// Both directions, `Plus` first.
    pub const BOTH: [Sign; 2] = [Sign::Plus, Sign::Minus];

    /// The opposite direction.
    #[must_use]
    pub fn flip(self) -> Sign {
        match self {
            Sign::Plus => Sign::Minus,
            Sign::Minus => Sign::Plus,
        }
    }
}

/// An `m`-dimensional mesh `D(l_m, …, l_1)` (paper notation), stored
/// ascending: `extents[k] = l_{k+1}`. Node indices are mixed-radix
/// values with dimension 1 varying fastest — identical to the node
/// numbering of `sg_graph::builders::mesh`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeshShape {
    extents: Vec<usize>,
    /// strides[k] = Π_{j<k} extents[j]
    strides: Vec<u64>,
    size: u64,
}

impl MeshShape {
    /// Builds a shape from ascending extents `[l_1, l_2, …, l_m]`.
    ///
    /// # Errors
    /// [`MeshError::Empty`], [`MeshError::ZeroExtent`] or
    /// [`MeshError::TooLarge`].
    pub fn new(extents: &[usize]) -> Result<Self, MeshError> {
        if extents.is_empty() {
            return Err(MeshError::Empty);
        }
        let mut strides = Vec::with_capacity(extents.len());
        let mut acc: u64 = 1;
        for (k, &l) in extents.iter().enumerate() {
            if l == 0 {
                return Err(MeshError::ZeroExtent { dim: k + 1 });
            }
            strides.push(acc);
            acc = acc.checked_mul(l as u64).ok_or(MeshError::TooLarge)?;
        }
        Ok(MeshShape {
            extents: extents.to_vec(),
            strides,
            size: acc,
        })
    }

    /// The paper's display order constructor: `MeshShape::from_display(&[l_m, …, l_1])`.
    ///
    /// # Errors
    /// Same as [`MeshShape::new`].
    pub fn from_display(extents_display: &[usize]) -> Result<Self, MeshError> {
        let mut asc = extents_display.to_vec();
        asc.reverse();
        Self::new(&asc)
    }

    /// Number of dimensions `m`.
    #[inline]
    #[must_use]
    pub fn dims(&self) -> usize {
        self.extents.len()
    }

    /// Extent `l_i` of dimension `i` (1-based).
    ///
    /// # Panics
    /// Panics if `i` is 0 or out of range.
    #[inline]
    #[must_use]
    pub fn extent(&self, i: usize) -> usize {
        assert!(
            i >= 1 && i <= self.extents.len(),
            "dimension {i} out of range"
        );
        self.extents[i - 1]
    }

    /// Ascending extents `[l_1, …, l_m]`.
    #[inline]
    #[must_use]
    pub fn extents(&self) -> &[usize] {
        &self.extents
    }

    /// Total number of nodes `Π l_i`.
    #[inline]
    #[must_use]
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Mesh diameter `Σ (l_i − 1)` (corner to opposite corner).
    #[must_use]
    pub fn diameter(&self) -> u64 {
        self.extents.iter().map(|&l| (l - 1) as u64).sum()
    }

    /// Maximum node degree: `Σ over dims of (1 if boundary-only else 2)`
    /// achieved by an interior node, i.e. `Σ min(l_i − 1, 2)`.
    #[must_use]
    pub fn max_degree(&self) -> usize {
        self.extents.iter().map(|&l| (l - 1).min(2)).sum()
    }

    /// `true` iff `p` is inside the shape.
    #[must_use]
    pub fn contains(&self, p: &MeshPoint) -> bool {
        p.dims() == self.dims()
            && p.ascending()
                .iter()
                .zip(&self.extents)
                .all(|(&c, &l)| (c as usize) < l)
    }

    /// Validates `p` against the shape.
    ///
    /// # Errors
    /// [`MeshError::DimMismatch`] or [`MeshError::CoordOutOfRange`].
    pub fn check(&self, p: &MeshPoint) -> Result<(), MeshError> {
        if p.dims() != self.dims() {
            return Err(MeshError::DimMismatch {
                point: p.dims(),
                shape: self.dims(),
            });
        }
        for (k, (&c, &l)) in p.ascending().iter().zip(&self.extents).enumerate() {
            if c as usize >= l {
                return Err(MeshError::CoordOutOfRange {
                    dim: k + 1,
                    coord: c,
                    extent: l,
                });
            }
        }
        Ok(())
    }

    /// Mixed-radix node index of `p` (dimension 1 fastest).
    ///
    /// # Panics
    /// Panics if `p` is not inside the shape.
    #[must_use]
    pub fn index_of(&self, p: &MeshPoint) -> u64 {
        self.check(p).expect("point outside shape");
        p.ascending()
            .iter()
            .zip(&self.strides)
            .map(|(&c, &s)| u64::from(c) * s)
            .sum()
    }

    /// Point with the given node index.
    ///
    /// # Panics
    /// Panics if `idx >= size()`.
    #[must_use]
    pub fn point_at(&self, idx: u64) -> MeshPoint {
        assert!(
            idx < self.size,
            "index {idx} out of range (size {})",
            self.size
        );
        let mut rest = idx;
        let coords: Vec<u32> = self
            .extents
            .iter()
            .map(|&l| {
                let c = (rest % l as u64) as u32;
                rest /= l as u64;
                c
            })
            .collect();
        MeshPoint::from_ascending(&coords).expect("nonempty")
    }

    /// Neighbor of `p` one step along dimension `dim` (1-based) in
    /// direction `sign`, or `None` at the boundary.
    ///
    /// # Panics
    /// Panics if `p` is outside the shape or `dim` out of range.
    #[must_use]
    pub fn neighbor(&self, p: &MeshPoint, dim: usize, sign: Sign) -> Option<MeshPoint> {
        self.check(p).expect("point outside shape");
        let c = p.d(dim);
        match sign {
            Sign::Plus => ((c as usize) + 1 < self.extent(dim)).then(|| p.with_d(dim, c + 1)),
            Sign::Minus => (c > 0).then(|| p.with_d(dim, c - 1)),
        }
    }

    /// All existing neighbors of `p`, dimension-major, `Plus` first.
    #[must_use]
    pub fn neighbors(&self, p: &MeshPoint) -> Vec<MeshPoint> {
        (1..=self.dims())
            .flat_map(|dim| {
                Sign::BOTH
                    .into_iter()
                    .filter_map(move |s| self.neighbor(p, dim, s))
            })
            .collect()
    }

    /// Degree of `p`.
    #[must_use]
    pub fn degree(&self, p: &MeshPoint) -> usize {
        self.neighbors(p).len()
    }

    /// Iterator over all points in index order.
    pub fn points(&self) -> impl Iterator<Item = MeshPoint> + '_ {
        (0..self.size).map(|i| self.point_at(i))
    }

    /// Iterator over all undirected mesh edges as
    /// `(point, dim, plus-neighbor)` triples.
    pub fn edges(&self) -> impl Iterator<Item = (MeshPoint, usize, MeshPoint)> + '_ {
        self.points().flat_map(move |p| {
            (1..=self.dims())
                .filter_map(move |dim| {
                    self.neighbor(&p, dim, Sign::Plus)
                        .map(|q| (p.clone(), dim, q))
                })
                .collect::<Vec<_>>()
        })
    }

    /// Materializes the CSR adjacency (node ids = mesh indices; matches
    /// `sg_graph::builders::mesh` numbering).
    #[must_use]
    pub fn to_csr(&self) -> sg_graph::CsrGraph {
        sg_graph::builders::mesh(&self.extents)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape234() -> MeshShape {
        // Figure 3: the 2*3*4 mesh, i.e. l_3 = 2, l_2 = 3, l_1 = 4.
        MeshShape::from_display(&[2, 3, 4]).unwrap()
    }

    #[test]
    fn display_constructor_reverses() {
        let s = shape234();
        assert_eq!(s.extents(), &[4, 3, 2]);
        assert_eq!(s.extent(1), 4);
        assert_eq!(s.extent(3), 2);
        assert_eq!(s.size(), 24);
        assert_eq!(s.diameter(), 6);
        assert_eq!(s.max_degree(), 5); // 2 + 2 + 1
    }

    #[test]
    fn index_point_roundtrip() {
        let s = shape234();
        for i in 0..s.size() {
            let p = s.point_at(i);
            assert!(s.contains(&p));
            assert_eq!(s.index_of(&p), i);
        }
    }

    #[test]
    fn neighbor_semantics_and_boundaries() {
        let s = shape234();
        let origin = MeshPoint::new(&[0, 0, 0]).unwrap();
        assert_eq!(s.neighbor(&origin, 1, Sign::Minus), None);
        assert_eq!(
            s.neighbor(&origin, 1, Sign::Plus),
            Some(MeshPoint::new(&[0, 0, 1]).unwrap())
        );
        let corner = MeshPoint::new(&[1, 2, 3]).unwrap();
        assert_eq!(s.neighbor(&corner, 1, Sign::Plus), None);
        assert_eq!(s.neighbor(&corner, 2, Sign::Plus), None);
        assert_eq!(s.neighbor(&corner, 3, Sign::Plus), None);
        assert_eq!(s.degree(&corner), 3);
        assert_eq!(s.degree(&origin), 3);
    }

    #[test]
    fn neighbors_are_l1_distance_one() {
        let s = shape234();
        for p in s.points() {
            for q in s.neighbors(&p) {
                assert_eq!(p.l1_distance(&q), 1);
                assert!(s.contains(&q));
            }
        }
    }

    #[test]
    fn csr_matches_shape_adjacency() {
        let s = shape234();
        let g = s.to_csr();
        assert_eq!(g.node_count() as u64, s.size());
        for p in s.points() {
            let i = s.index_of(&p) as u32;
            let mut ours: Vec<u32> = s
                .neighbors(&p)
                .iter()
                .map(|q| s.index_of(q) as u32)
                .collect();
            ours.sort_unstable();
            assert_eq!(ours.as_slice(), g.neighbors(i));
        }
    }

    #[test]
    fn edge_count_matches_figure3() {
        let s = shape234();
        assert_eq!(s.edges().count(), 46);
    }

    #[test]
    fn interior_node_has_max_degree() {
        let s = MeshShape::new(&[3, 3, 3]).unwrap();
        let center = MeshPoint::new(&[1, 1, 1]).unwrap();
        assert_eq!(s.degree(&center), s.max_degree());
        assert_eq!(s.max_degree(), 6);
    }

    #[test]
    fn errors_reported() {
        assert!(MeshShape::new(&[]).is_err());
        assert!(MeshShape::new(&[3, 0]).is_err());
        let s = shape234();
        let bad = MeshPoint::new(&[5, 0, 0]).unwrap();
        assert!(matches!(
            s.check(&bad),
            Err(MeshError::CoordOutOfRange {
                dim: 3,
                coord: 5,
                extent: 2
            })
        ));
        let wrong_dims = MeshPoint::new(&[0, 0]).unwrap();
        assert!(matches!(
            s.check(&wrong_dims),
            Err(MeshError::DimMismatch { .. })
        ));
    }

    #[test]
    fn sign_flip() {
        assert_eq!(Sign::Plus.flip(), Sign::Minus);
        assert_eq!(Sign::Minus.flip(), Sign::Plus);
    }
}
