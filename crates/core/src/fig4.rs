//! The worked example of Figure 4.
//!
//! Guest `G`: the 4-cycle `1–2, 2–4, 4–3, 3–1`. Host `S`: the star
//! `K_{1,3}` with center `a` and leaves `b, c, d`. Vertex map
//! `1→a, 2→b, 3→c, 4→d`; edge-to-path map `(1,2)→ab`, `(2,4)→bad`,
//! `(4,3)→dac`, `(3,1)→ca`. The paper reports **expansion 1,
//! dilation 2, congestion 2** — regenerated here through the generic
//! analyzer.

use crate::embedding::Embedding;
use sg_graph::csr::CsrGraph;

/// Node ids for the host of Figure 4 (`a` = 0, `b` = 1, `c` = 2, `d` = 3).
pub const HOST_LABELS: [&str; 4] = ["a", "b", "c", "d"];

/// Builds the Figure-4 embedding exactly as printed.
#[must_use]
pub fn figure4_embedding() -> Embedding {
    // Guest vertices 1..4 become ids 0..3.
    let guest = CsrGraph::from_edges(4, &[(0, 1), (1, 3), (3, 2), (2, 0)]);
    // Host: center a(0) adjacent to b(1), c(2), d(3).
    let host = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
    // Vertex map: 1→a, 2→b, 3→c, 4→d.
    let vertex_map = vec![0, 1, 2, 3];
    // guest.edges() yields (0,1), (0,2), (1,3), (2,3) in canonical order:
    //  (0,1) = (1,2) → a b
    //  (0,2) = (1,3) → a c          (printed as "ca" in the paper)
    //  (1,3) = (2,4) → b a d
    //  (2,3) = (3,4) → c a d        (printed as "dac")
    let edge_paths = vec![vec![0, 1], vec![0, 2], vec![1, 0, 3], vec![2, 0, 3]];
    Embedding {
        guest,
        host,
        vertex_map,
        edge_paths,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_metrics_match_paper() {
        let e = figure4_embedding();
        let m = e.analyze().expect("the printed example is valid");
        assert!((m.expansion - 1.0).abs() < 1e-12);
        assert_eq!(m.dilation, 2);
        assert_eq!(m.congestion, 2);
    }

    #[test]
    fn figure4_paths_cover_paper_strings() {
        let e = figure4_embedding();
        let as_labels: Vec<String> = e
            .edge_paths
            .iter()
            .map(|p| p.iter().map(|&v| HOST_LABELS[v as usize]).collect())
            .collect();
        assert!(as_labels.contains(&"ab".to_string()));
        assert!(as_labels.contains(&"bad".to_string()));
        // The paper writes "dac" and "ca"; ours are the same undirected
        // paths traversed from the lower-numbered endpoint.
        assert!(as_labels.contains(&"cad".to_string()));
        assert!(as_labels.contains(&"ac".to_string()));
    }
}
