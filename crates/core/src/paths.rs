//! Lemma 2's constructive dilation-3 paths and the mesh-edge router.
//!
//! For a symbol transposition `π ↦ π_(x,y)`:
//!
//! * if `x` or `y` is the front symbol, one generator suffices
//!   (distance 1);
//! * otherwise the canonical 3-hop path swaps the front through both
//!   symbols: `π → (x …) → (y …) → π_(x,y)` — first fetch `x` to the
//!   front, then exchange it with `y`'s slot, then park `y` where the
//!   original front symbol waits.
//!
//! Combined with Lemma 3 (each mesh edge *is* a symbol transposition)
//! this yields the edge-to-path map of the embedding, and its
//! regularity is what makes the Theorem-6 unit-route schedule
//! conflict-free (see `crate::congestion`).

use crate::lemma3::{minus_swap_symbols, plus_swap_symbols};
use sg_perm::Perm;

/// The canonical shortest path realizing the symbol transposition
/// `π → π_(x,y)`, inclusive of both endpoints (so its length is 2 or
/// 4 nodes = 1 or 3 hops).
///
/// # Panics
/// Panics if `x == y` or either symbol is out of range.
#[must_use]
pub fn transposition_path(pi: &Perm, x: u8, y: u8) -> Vec<Perm> {
    assert_ne!(x, y, "transposing a symbol with itself");
    let front = pi.symbol_at(0);
    if front == x || front == y {
        // One hop: the other symbol's slot.
        let other = if front == x { y } else { x };
        let j = pi.slot_of(other);
        return vec![*pi, pi.with_slots_swapped(0, j)];
    }
    let slot_x = pi.slot_of(x);
    let slot_y = pi.slot_of(y);
    let p1 = pi.with_slots_swapped(0, slot_x); // front = x, slot_x = front
    let p2 = p1.with_slots_swapped(0, slot_y); // front = y, slot_y = x
    let p3 = p2.with_slots_swapped(0, slot_x); // front restored, slot_x = y
    vec![*pi, p1, p2, p3]
}

/// Generator indices (`g_j`) realizing [`transposition_path`].
#[must_use]
pub fn transposition_generators(pi: &Perm, x: u8, y: u8) -> Vec<usize> {
    assert_ne!(x, y, "transposing a symbol with itself");
    let front = pi.symbol_at(0);
    if front == x || front == y {
        let other = if front == x { y } else { x };
        return vec![pi.slot_of(other)];
    }
    let slot_x = pi.slot_of(x);
    let slot_y = pi.slot_of(y);
    vec![slot_x, slot_y, slot_x]
}

/// The dilation-3 path for one mesh edge: from the star node `pi`
/// (image of mesh node `d`) to the image of `d`'s neighbor along
/// dimension `k` in the `plus` direction (`true` = `d_k + 1`).
/// `None` if the mesh neighbor does not exist.
///
/// # Panics
/// Panics unless `1 ≤ k ≤ n−1`.
#[must_use]
pub fn dilation3_path(pi: &Perm, k: usize, plus: bool) -> Option<Vec<Perm>> {
    let (a, b) = if plus {
        plus_swap_symbols(pi, k)?
    } else {
        minus_swap_symbols(pi, k)?
    };
    Some(transposition_path(pi, a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::convert_d_s;
    use crate::lemma3::{mesh_neighbor_minus, mesh_neighbor_plus};
    use proptest::prelude::*;
    use sg_mesh::dn::DnMesh;
    use sg_perm::factorial::factorial;
    use sg_perm::lehmer::unrank;
    use sg_star::distance::distance;
    use sg_star::StarGraph;

    #[test]
    fn paper_edge_to_path_examples() {
        // §3.2 (after Lemma 3):
        // ((2,1,0,1),(2,2,0,1)) → (2 3 4 0 1)(3 2 4 0 1)(1 2 4 0 3)(2 1 4 0 3)
        let pi = Perm::from_slice(&[2, 3, 4, 0, 1]).unwrap();
        let path = dilation3_path(&pi, 3, true).unwrap();
        let strs: Vec<String> = path.iter().map(|p| p.to_string()).collect();
        assert_eq!(
            strs,
            ["(2 3 4 0 1)", "(3 2 4 0 1)", "(1 2 4 0 3)", "(2 1 4 0 3)"]
        );
        // ((2,1,0,1),(2,0,0,1)) → (2 3 4 0 1)(3 2 4 0 1)(4 2 3 0 1)(2 4 3 0 1)
        let path_m = dilation3_path(&pi, 3, false).unwrap();
        let strs_m: Vec<String> = path_m.iter().map(|p| p.to_string()).collect();
        assert_eq!(
            strs_m,
            ["(2 3 4 0 1)", "(3 2 4 0 1)", "(4 2 3 0 1)", "(2 4 3 0 1)"]
        );
    }

    #[test]
    fn paths_are_valid_walks_with_correct_endpoints() {
        for n in 2..=6usize {
            let star = StarGraph::new(n);
            let dn = DnMesh::new(n);
            for d in dn.points() {
                let pi = convert_d_s(&d);
                for k in 1..n {
                    for plus in [true, false] {
                        let target = if plus {
                            mesh_neighbor_plus(&pi, k)
                        } else {
                            mesh_neighbor_minus(&pi, k)
                        };
                        let path = dilation3_path(&pi, k, plus);
                        match (target, path) {
                            (None, None) => {}
                            (Some(t), Some(p)) => {
                                assert_eq!(*p.first().unwrap(), pi);
                                assert_eq!(*p.last().unwrap(), t);
                                for w in p.windows(2) {
                                    assert!(star.are_adjacent(&w[0], &w[1]));
                                }
                            }
                            (t, p) => panic!("mismatch at {d} k={k}: {t:?} vs {p:?}"),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn path_lengths_match_lemma2() {
        // Length 1 iff the front symbol is in the pair (always for
        // k = n-1, never otherwise); length 3 else.
        for n in 3..=6usize {
            let dn = DnMesh::new(n);
            for d in dn.points() {
                let pi = convert_d_s(&d);
                for k in 1..n {
                    if let Some(p) = dilation3_path(&pi, k, true) {
                        let hops = p.len() - 1;
                        if k == n - 1 {
                            assert_eq!(hops, 1, "d={d} k={k}");
                        } else {
                            assert_eq!(hops, 3, "d={d} k={k}");
                        }
                        // Path length equals the true star distance.
                        assert_eq!(hops as u32, distance(p.first().unwrap(), p.last().unwrap()));
                    }
                }
            }
        }
    }

    #[test]
    fn generators_reproduce_path() {
        let pi = Perm::from_slice(&[2, 3, 4, 0, 1]).unwrap();
        let gens = transposition_generators(&pi, 3, 1);
        let path = transposition_path(&pi, 3, 1);
        let mut cur = pi;
        for (step, &j) in gens.iter().enumerate() {
            cur.swap_slots(0, j);
            assert_eq!(cur, path[step + 1]);
        }
    }

    #[test]
    fn transposition_path_is_symmetric_in_xy() {
        let pi = Perm::from_slice(&[4, 1, 3, 0, 2]).unwrap();
        // Same endpoints regardless of argument order.
        let p1 = transposition_path(&pi, 1, 3);
        let p2 = transposition_path(&pi, 3, 1);
        assert_eq!(p1.last(), p2.last());
    }

    #[test]
    #[should_panic(expected = "itself")]
    fn same_symbol_rejected() {
        let pi = Perm::identity(4);
        let _ = transposition_path(&pi, 2, 2);
    }

    proptest! {
        #[test]
        fn prop_transposition_path_correct(n in 3usize..=10, seed in any::<u64>(), xs in any::<u8>(), ys in any::<u8>()) {
            let pi = unrank(seed % factorial(n), n).unwrap();
            let x = xs % n as u8;
            let mut y = ys % n as u8;
            if x == y { y = (y + 1) % n as u8; }
            let path = transposition_path(&pi, x, y);
            prop_assert_eq!(*path.last().unwrap(), pi.with_symbols_swapped(x, y));
            prop_assert!(path.len() == 2 || path.len() == 4);
            // consecutive nodes differ by a front swap
            for w in path.windows(2) {
                prop_assert_eq!(w[0].symbol_at(0) == w[1].symbol_at(0), false);
                let diff: Vec<usize> = (0..n).filter(|&i| w[0].symbol_at(i) != w[1].symbol_at(i)).collect();
                prop_assert_eq!(diff.len(), 2);
                prop_assert_eq!(diff[0], 0);
            }
        }
    }
}
