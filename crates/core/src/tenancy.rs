//! The paper's embedding, relabeled into a sub-star.
//!
//! `S_n` decomposes recursively into node-disjoint copies of smaller
//! stars ([`sg_star::substar::SubStar`]), and each order-`m` copy is
//! isomorphic to `S_m` through [`SubStar::project`]/[`SubStar::lift`].
//! Composing that isomorphism with `CONVERT-D-S` embeds the mesh
//! `D_m = 2 × 3 × ⋯ × m` into the sub-star with expansion 1 and the
//! same dilation-3 edge paths as Theorem 6 — every tenant of a
//! multi-job `S_n` gets the full paper embedding on its own slice of
//! the machine, using only generators `g_1 … g_{m−1}`, which never
//! leave the sub-star.

use crate::convert::{convert_d_s, convert_s_d};
use sg_mesh::dn::DnMesh;
use sg_mesh::MeshPoint;
use sg_perm::lehmer::{rank, unrank};
use sg_perm::Perm;
use sg_star::substar::SubStar;

/// Maps a node of `D_m` onto the order-`m` sub-star: `CONVERT-D-S`
/// in local coordinates, lifted to the host `S_n`.
///
/// # Panics
/// Panics if `d` has the wrong number of dimensions for the
/// sub-star's order.
#[must_use]
pub fn mesh_to_substar(sub: &SubStar, d: &MeshPoint) -> Perm {
    assert_eq!(
        d.dims() + 1,
        sub.order(),
        "mesh D_{} does not fill an order-{} sub-star",
        d.dims() + 1,
        sub.order()
    );
    sub.lift(&convert_d_s(d))
}

/// Inverse of [`mesh_to_substar`]: recovers the mesh coordinates of a
/// sub-star node.
///
/// # Panics
/// Panics unless `p` lies in the sub-star.
#[must_use]
pub fn substar_to_mesh(sub: &SubStar, p: &Perm) -> MeshPoint {
    convert_s_d(&sub.project(p))
}

/// [`mesh_to_substar`] on indices: mesh index of `D_m` (row-major,
/// [`DnMesh::point_at`] order) → global Lehmer rank in `S_n`.
///
/// # Panics
/// Panics if `idx` is out of range for `D_m`.
#[must_use]
pub fn mesh_rank_to_substar(sub: &SubStar, idx: u64) -> u64 {
    let dn = DnMesh::new(sub.order());
    rank(&mesh_to_substar(sub, &dn.point_at(idx)))
}

/// [`substar_to_mesh`] on indices: global Lehmer rank → mesh index.
///
/// # Panics
/// Panics unless the rank lies in the sub-star.
#[must_use]
pub fn substar_rank_to_mesh(sub: &SubStar, r: u64) -> u64 {
    let dn = DnMesh::new(sub.order());
    dn.index_of(&substar_to_mesh(
        sub,
        &unrank(r, sub.n()).expect("rank in range"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_perm::factorial::factorial;
    use sg_star::distance::distance;
    use sg_star::substar::substars_of_order;

    #[test]
    fn relabeled_embedding_is_a_bijection_onto_the_substar() {
        let n = 5;
        for m in 2..=4usize {
            for sub in substars_of_order(n, m).iter().step_by(3) {
                let mut seen = std::collections::HashSet::new();
                for idx in 0..factorial(m) {
                    let g = mesh_rank_to_substar(sub, idx);
                    assert!(sub.contains_rank(g), "image must stay in the sub-star");
                    assert!(seen.insert(g), "expansion 1 means injective");
                    assert_eq!(substar_rank_to_mesh(sub, g), idx, "round trip");
                }
                assert_eq!(seen.len() as u64, sub.size(), "onto: expansion exactly 1");
            }
        }
    }

    #[test]
    fn relabeled_embedding_preserves_dilation_3() {
        // Mesh neighbors land at star distance ≤ 3 inside the
        // sub-star (exactly 1 along dimension m−1) — Theorem 4,
        // relabeled.
        let n = 6;
        let m = 4;
        let dn = DnMesh::new(m);
        for sub in substars_of_order(n, m).iter().step_by(7) {
            for d in dn.points() {
                let p = mesh_to_substar(sub, &d);
                for k in 1..m {
                    if d.d(k) < k as u32 {
                        let q = mesh_to_substar(sub, &d.with_d(k, d.d(k) + 1));
                        let dist = distance(&p, &q);
                        let expect_max = if k == m - 1 { 1 } else { 3 };
                        assert!(
                            dist >= 1 && dist <= expect_max,
                            "dimension {k}: distance {dist}"
                        );
                    }
                }
            }
        }
    }
}
