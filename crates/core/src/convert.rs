//! `CONVERT-D-S` and `CONVERT-S-D` (paper Figures 5 and 6).
//!
//! The vertex mapping of the embedding. Mesh node
//! `(d_{n-1}, …, d_1)` of `D_n` maps to the star node reached from the
//! identity `(n−1 n−2 ⋯ 1 0)` by applying, for each dimension
//! `i = 1 … n−1` in order, the first `d_i` symbol exchanges of
//! Table 1's row `i`:
//!
//! ```text
//! row i:   (i−1 i) (i−2 i−1) ⋯ (1 2) (0 1)
//! ```
//!
//! Equivalently (Figure 5): build the *position* array `q` by bubbling
//! value `i` down `d_i` slots, then invert. Both formulations are
//! implemented and tested equal; the inverse recovers the coordinates
//! by reading off, for each `i` from `n−1` down, how far symbol
//! placement is displaced (Figure 6).
//!
//! Conventions: our `Perm` slot `s` is the paper's position `n−1−s`
//! (slot 0 = front). `MeshPoint::d(i)` is the paper's `d_i`.

use sg_mesh::dn::DnMesh;
use sg_mesh::MeshPoint;
use sg_perm::Perm;

/// Maps a mesh node of `D_n` to its star-graph node (Figure 5,
/// `CONVERT-D-S`). `O(n²)`.
///
/// ```
/// use sg_core::convert::convert_d_s;
/// use sg_mesh::MeshPoint;
/// // §3.2 worked example: (3,0,1) ↦ (0 3 1 2) on S_4.
/// let d = MeshPoint::new(&[3, 0, 1]).unwrap();
/// assert_eq!(convert_d_s(&d).to_string(), "(0 3 1 2)");
/// ```
///
/// # Panics
/// Panics if some coordinate exceeds its dimension (`d_i > i`).
#[must_use]
pub fn convert_d_s(d: &MeshPoint) -> Perm {
    let m = d.dims();
    let n = m + 1;
    // q[k] = value currently at position k; starts as the identity.
    let mut q: Vec<u8> = (0..n as u8).collect();
    for i in 1..n {
        let di = d.d(i) as usize;
        assert!(
            di <= i,
            "coordinate d_{i} = {di} exceeds dimension size {}",
            i + 1
        );
        for j in 1..=di {
            q.swap(i - j, i - j + 1);
        }
    }
    // p[k] = symbol at paper position k: p[q[i]] = i.
    let mut p = vec![0u8; n];
    for (i, &qi) in q.iter().enumerate() {
        p[qi as usize] = i as u8;
    }
    // Our slot s = paper position n-1-s: display order is p reversed.
    p.reverse();
    Perm::from_slice(&p).expect("permutation by construction")
}

/// Same mapping computed by applying Table 1's symbol exchanges
/// directly to the identity node — the formulation used in the
/// paper's §3.2 walkthrough. Exposed for the Table-1 regenerator and
/// cross-checked against [`convert_d_s`] in tests.
#[must_use]
pub fn convert_d_s_via_exchanges(d: &MeshPoint) -> Perm {
    let n = d.dims() + 1;
    let mut node = home_node(n);
    for i in 1..n {
        for (a, b) in exchanges_for(i, d.d(i) as usize) {
            node.swap_symbols(a, b);
        }
    }
    node
}

/// The image of the mesh origin `(0, …, 0)`: the paper's
/// "(n−1 n−2 ⋯ 1 0)", i.e. display slot `s` holds symbol `n−1−s`.
/// (Note this is *not* the slot-order identity `(0 1 ⋯ n−1)` — the
/// paper numbers positions from the right.)
#[must_use]
pub fn home_node(n: usize) -> Perm {
    let rev: Vec<u8> = (0..n as u8).rev().collect();
    Perm::from_slice(&rev).expect("valid length")
}

/// The first `count` symbol exchanges of Table 1's row `i`:
/// `(i−1 i), (i−2 i−1), …` — `count = d_i` of them.
///
/// # Panics
/// Panics if `count > i`.
#[must_use]
pub fn exchanges_for(i: usize, count: usize) -> Vec<(u8, u8)> {
    assert!(count <= i, "dimension {i} admits at most {i} exchanges");
    (0..count)
        .map(|j| ((i - 1 - j) as u8, (i - j) as u8))
        .collect()
}

/// Full row `i` of Table 1 (all `i` exchanges).
#[must_use]
pub fn table1_row(i: usize) -> Vec<(u8, u8)> {
    exchanges_for(i, i)
}

/// Maps a star-graph node back to its mesh node (Figure 6,
/// `CONVERT-S-D`). Exact inverse of [`convert_d_s`]. `O(n²)`.
///
/// ```
/// use sg_core::convert::convert_s_d;
/// use sg_perm::Perm;
/// // §3.2 worked example: (0 2 1 3) ↦ (3,1,1).
/// let pi = Perm::from_slice(&[0, 2, 1, 3]).unwrap();
/// assert_eq!(convert_s_d(&pi).to_string(), "(3,1,1)");
/// ```
///
/// # Panics
/// Panics on a length-1 permutation (`D_1` does not exist).
#[must_use]
pub fn convert_s_d(pi: &Perm) -> MeshPoint {
    let n = pi.len();
    assert!(n >= 2, "CONVERT-S-D needs n >= 2");
    // Recover the paper's p array (p[k] = symbol at position k) and
    // work on q := p as in Figure 6.
    let mut q: Vec<i64> = (0..n).map(|k| i64::from(pi.symbol_at(n - 1 - k))).collect();
    let mut coords = vec![0u32; n]; // coords[i] = d_i (index 0 unused)
    for i in (1..n).rev() {
        let qi = q[i];
        debug_assert!(
            qi <= i as i64,
            "invariant: after removing larger symbols, q(i) <= i"
        );
        if (i as i64) > qi {
            coords[i] = (i as i64 - qi) as u32;
            for qj in q.iter_mut().take(i).skip(1) {
                if *qj > qi {
                    *qj -= 1;
                }
            }
        }
    }
    MeshPoint::from_ascending(&coords[1..]).expect("n >= 2")
}

/// Alternative `CONVERT-S-D` via explicit insertion-code decoding
/// (delete the largest remaining value and record its displacement).
/// Used as an independent cross-check of the Figure-6 algorithm.
#[must_use]
pub fn convert_s_d_via_removal(pi: &Perm) -> MeshPoint {
    let n = pi.len();
    assert!(n >= 2, "CONVERT-S-D needs n >= 2");
    // The forward pass built the position-indexed array q (q[pos] =
    // value) by inserting value i at position i - d_i, for i rising.
    // Its inverse is the paper's p array — the displayed node itself:
    // position of value i = p[i] = symbol_at(n-1-i). Decode by
    // removing values n-1 … 1 and recording displacements.
    let mut positions: Vec<u8> = (0..n).map(|i| pi.symbol_at(n - 1 - i)).collect();
    let mut coords = vec![0u32; n];
    for i in (1..n).rev() {
        let pos = positions[i];
        debug_assert!(
            u32::from(pos) <= i as u32,
            "largest remaining value cannot sit past position {i}"
        );
        coords[i] = (i as u32) - u32::from(pos);
        // Removing the value at `pos` closes the gap: every remaining
        // position greater than `pos` shifts down by one.
        positions.truncate(i);
        for p in positions.iter_mut() {
            if *p > pos {
                *p -= 1;
            }
        }
    }
    MeshPoint::from_ascending(&coords[1..]).expect("n >= 2")
}

/// Regenerates the full Figure-7 table: all 24 rows of
/// `V(D_4) ↔ V(S_4)` in mesh-index order, as
/// `(mesh display string, star display string)` pairs — and the
/// general-`n` analogue.
#[must_use]
pub fn mapping_table(n: usize) -> Vec<(String, String)> {
    let dn = DnMesh::new(n);
    dn.points()
        .map(|d| {
            let pi = convert_d_s(&d);
            (d.to_string(), pi.to_string())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sg_perm::lehmer::rank;

    #[test]
    fn origin_maps_to_home_node() {
        // §3.2: node (0,…,0) maps to (n-1 n-2 … 1 0).
        for n in 2..=8usize {
            let d = MeshPoint::from_ascending(&vec![0; n - 1]).unwrap();
            let pi = convert_d_s(&d);
            assert_eq!(pi, home_node(n), "n={n}: got {pi}");
            assert_eq!(pi.symbol_at(0), (n - 1) as u8, "front symbol is n-1");
        }
    }

    #[test]
    fn paper_worked_example_forward() {
        // (3,0,1): d1=1 gives (3 2 0 1); d2=0; d3=3 gives (0 3 1 2).
        let d = MeshPoint::new(&[3, 0, 1]).unwrap();
        assert_eq!(convert_d_s(&d).to_string(), "(0 3 1 2)");
        // Intermediate from the text: (3,0,1) with only d1 applied:
        let d1_only = MeshPoint::new(&[0, 0, 1]).unwrap();
        assert_eq!(convert_d_s(&d1_only).to_string(), "(3 2 0 1)");
    }

    #[test]
    fn paper_worked_example_inverse() {
        let pi = Perm::from_slice(&[0, 2, 1, 3]).unwrap();
        assert_eq!(convert_s_d(&pi).to_string(), "(3,1,1)");
    }

    /// The full Figure 7 table, transcribed from the paper.
    const FIGURE7: [(&str, &str); 24] = [
        ("(0,0,0)", "(3 2 1 0)"),
        ("(0,0,1)", "(3 2 0 1)"),
        ("(0,1,0)", "(3 1 2 0)"),
        ("(0,1,1)", "(3 1 0 2)"),
        ("(0,2,0)", "(3 0 2 1)"),
        ("(0,2,1)", "(3 0 1 2)"),
        ("(1,0,0)", "(2 3 1 0)"),
        ("(1,0,1)", "(2 3 0 1)"),
        ("(1,1,0)", "(2 1 3 0)"),
        ("(1,1,1)", "(2 1 0 3)"),
        ("(1,2,0)", "(2 0 3 1)"),
        ("(1,2,1)", "(2 0 1 3)"),
        ("(2,0,0)", "(1 3 2 0)"),
        ("(2,0,1)", "(1 3 0 2)"),
        ("(2,1,0)", "(1 2 3 0)"),
        ("(2,1,1)", "(1 2 0 3)"),
        ("(2,2,0)", "(1 0 3 2)"),
        ("(2,2,1)", "(1 0 2 3)"),
        ("(3,0,0)", "(0 3 2 1)"),
        ("(3,0,1)", "(0 3 1 2)"),
        ("(3,1,0)", "(0 2 3 1)"),
        ("(3,1,1)", "(0 2 1 3)"),
        ("(3,2,0)", "(0 1 3 2)"),
        ("(3,2,1)", "(0 1 2 3)"),
    ];

    #[test]
    fn figure7_table_reproduced_exactly() {
        for (mesh_str, star_str) in FIGURE7 {
            let display: Vec<u32> = mesh_str
                .trim_matches(|c| c == '(' || c == ')')
                .split(',')
                .map(|t| t.parse().unwrap())
                .collect();
            let d = MeshPoint::new(&display).unwrap();
            assert_eq!(convert_d_s(&d).to_string(), star_str, "mesh {mesh_str}");
            let symbols: Vec<u8> = star_str
                .trim_matches(|c| c == '(' || c == ')')
                .split(' ')
                .map(|t| t.parse().unwrap())
                .collect();
            let pi = Perm::from_slice(&symbols).unwrap();
            assert_eq!(convert_s_d(&pi).to_string(), mesh_str, "star {star_str}");
        }
    }

    #[test]
    fn roundtrip_exhaustive() {
        for n in 2..=7usize {
            let dn = DnMesh::new(n);
            let mut seen = std::collections::HashSet::new();
            for d in dn.points() {
                let pi = convert_d_s(&d);
                assert_eq!(convert_s_d(&pi), d, "n={n} d={d}");
                assert!(seen.insert(rank(&pi)), "mapping not injective at {d}");
            }
            assert_eq!(seen.len() as u64, dn.node_count(), "mapping not onto");
        }
    }

    #[test]
    fn exchange_formulation_matches_position_formulation() {
        for n in 2..=7usize {
            let dn = DnMesh::new(n);
            for d in dn.points() {
                assert_eq!(
                    convert_d_s(&d),
                    convert_d_s_via_exchanges(&d),
                    "n={n} d={d}"
                );
            }
        }
    }

    #[test]
    fn removal_inverse_matches_figure6_inverse() {
        for n in 2..=7usize {
            let dn = DnMesh::new(n);
            for d in dn.points() {
                let pi = convert_d_s(&d);
                assert_eq!(convert_s_d(&pi), convert_s_d_via_removal(&pi), "n={n}");
            }
        }
    }

    #[test]
    fn table1_rows() {
        assert_eq!(table1_row(1), vec![(0, 1)]);
        assert_eq!(table1_row(2), vec![(1, 2), (0, 1)]);
        assert_eq!(table1_row(4), vec![(3, 4), (2, 3), (1, 2), (0, 1)]);
        assert_eq!(exchanges_for(3, 0), vec![]);
        assert_eq!(exchanges_for(3, 2), vec![(2, 3), (1, 2)]);
    }

    #[test]
    fn mapping_table_matches_figure7_order() {
        let table = mapping_table(4);
        assert_eq!(table.len(), 24);
        // Mesh-index order is (d3,d2,d1) with d1 fastest:
        assert_eq!(table[0], ("(0,0,0)".to_string(), "(3 2 1 0)".to_string()));
        assert_eq!(table[1], ("(0,0,1)".to_string(), "(3 2 0 1)".to_string()));
        assert_eq!(table[23], ("(3,2,1)".to_string(), "(0 1 2 3)".to_string()));
    }

    #[test]
    #[should_panic(expected = "exceeds dimension size")]
    fn out_of_range_coordinate_rejected() {
        let d = MeshPoint::new(&[0, 0, 2]).unwrap(); // d_1 = 2 > 1
        let _ = convert_d_s(&d);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(n in 2usize..=12, seed in any::<u64>()) {
            let dn = DnMesh::new(n);
            let idx = seed % dn.node_count();
            let d = dn.point_at(idx);
            let pi = convert_d_s(&d);
            prop_assert_eq!(convert_s_d(&pi), d);
        }

        #[test]
        fn prop_inverse_roundtrip(n in 2usize..=12, seed in any::<u64>()) {
            let pi = sg_perm::lehmer::unrank(
                seed % sg_perm::factorial::factorial(n), n).unwrap();
            let d = convert_s_d(&pi);
            prop_assert_eq!(convert_d_s(&d), pi);
        }

        #[test]
        fn prop_exchange_formulation_agrees(n in 2usize..=12, seed in any::<u64>()) {
            let dn = DnMesh::new(n);
            let d = dn.point_at(seed % dn.node_count());
            prop_assert_eq!(convert_d_s(&d), convert_d_s_via_exchanges(&d));
        }
    }
}
