//! The generic embedding framework of §3.1.
//!
//! An embedding of a guest graph `G` into a host graph `S` is an
//! injective vertex map plus a mapping of every guest edge to a simple
//! host path between the images. Its quality metrics:
//!
//! * **expansion** — `|S| / |G|`;
//! * **dilation** — the longest edge-path (in the paper's definition,
//!   the max *shortest-path distance* between images; for a valid
//!   edge-path map ours upper-bounds that, and for the star-mesh
//!   embedding they coincide);
//! * **congestion** — the max number of edge-paths crossing any single
//!   host edge.
//!
//! [`Embedding::analyze`] validates everything and computes the
//! metrics; [`star_mesh_embedding`] materializes the paper's embedding
//! for small `n` so it can be audited by the same generic machinery as
//! the Figure-4 example.

use sg_graph::csr::{CsrGraph, NodeId};

/// An explicit embedding of `guest` into `host`.
#[derive(Debug, Clone)]
pub struct Embedding {
    /// Guest graph `G`.
    pub guest: CsrGraph,
    /// Host graph `S`.
    pub host: CsrGraph,
    /// `vertex_map[g]` = image of guest vertex `g` in the host.
    pub vertex_map: Vec<NodeId>,
    /// For every guest edge `(a, b)` with `a < b`, the host path from
    /// `vertex_map[a]` to `vertex_map[b]` (inclusive endpoints), in
    /// the same order as `guest.edges()`.
    pub edge_paths: Vec<Vec<NodeId>>,
}

/// Metrics of a validated embedding (§3.1 definitions).
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingMetrics {
    /// `|S| / |G|`.
    pub expansion: f64,
    /// Max path length (hops) over guest edges.
    pub dilation: u32,
    /// Max number of paths sharing one host edge.
    pub congestion: u32,
}

/// Validation failures for [`Embedding::analyze`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmbeddingError {
    /// Host is smaller than guest (no injective map possible).
    HostTooSmall,
    /// Vertex map has the wrong length, an out-of-range image, or a
    /// repeated image.
    BadVertexMap(String),
    /// An edge path is missing, has wrong endpoints, repeats a vertex
    /// (not simple), or uses a non-edge.
    BadPath(String),
}

impl std::fmt::Display for EmbeddingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmbeddingError::HostTooSmall => write!(f, "|S| < |G|"),
            EmbeddingError::BadVertexMap(s) => write!(f, "bad vertex map: {s}"),
            EmbeddingError::BadPath(s) => write!(f, "bad edge path: {s}"),
        }
    }
}

impl std::error::Error for EmbeddingError {}

impl Embedding {
    /// Validates the §3.1 requirements and computes the metrics.
    ///
    /// # Errors
    /// See [`EmbeddingError`].
    pub fn analyze(&self) -> Result<EmbeddingMetrics, EmbeddingError> {
        let g = self.guest.node_count();
        let s = self.host.node_count();
        if s < g {
            return Err(EmbeddingError::HostTooSmall);
        }
        if self.vertex_map.len() != g {
            return Err(EmbeddingError::BadVertexMap(format!(
                "length {} != |G| = {g}",
                self.vertex_map.len()
            )));
        }
        let mut used = vec![false; s];
        for (v, &img) in self.vertex_map.iter().enumerate() {
            if (img as usize) >= s {
                return Err(EmbeddingError::BadVertexMap(format!(
                    "image of {v} out of range"
                )));
            }
            if used[img as usize] {
                return Err(EmbeddingError::BadVertexMap(format!(
                    "image of {v} duplicated (m(x) must be distinct)"
                )));
            }
            used[img as usize] = true;
        }

        let edges: Vec<(NodeId, NodeId)> = self.guest.edges().collect();
        if edges.len() != self.edge_paths.len() {
            return Err(EmbeddingError::BadPath(format!(
                "{} paths for {} guest edges",
                self.edge_paths.len(),
                edges.len()
            )));
        }
        let mut dilation = 0u32;
        let mut congestion: std::collections::HashMap<(NodeId, NodeId), u32> =
            std::collections::HashMap::new();
        for ((a, b), path) in edges.iter().zip(&self.edge_paths) {
            let exp_src = self.vertex_map[*a as usize];
            let exp_dst = self.vertex_map[*b as usize];
            if path.first() != Some(&exp_src) || path.last() != Some(&exp_dst) {
                return Err(EmbeddingError::BadPath(format!(
                    "path for ({a},{b}) has wrong endpoints"
                )));
            }
            let mut seen = std::collections::HashSet::with_capacity(path.len());
            for &v in path {
                if !seen.insert(v) {
                    return Err(EmbeddingError::BadPath(format!(
                        "path for ({a},{b}) is not simple"
                    )));
                }
            }
            for w in path.windows(2) {
                if !self.host.has_edge(w[0], w[1]) {
                    return Err(EmbeddingError::BadPath(format!(
                        "path for ({a},{b}) uses non-edge ({},{})",
                        w[0], w[1]
                    )));
                }
                let key = (w[0].min(w[1]), w[0].max(w[1]));
                *congestion.entry(key).or_insert(0) += 1;
            }
            dilation = dilation.max((path.len() - 1) as u32);
        }
        Ok(EmbeddingMetrics {
            expansion: s as f64 / g as f64,
            dilation,
            congestion: congestion.values().copied().max().unwrap_or(0),
        })
    }
}

/// Materializes the paper's embedding of `D_n` into `S_n` as an
/// explicit [`Embedding`] (guest node ids = mesh indices, host node
/// ids = Lehmer ranks), ready for [`Embedding::analyze`].
///
/// # Panics
/// Panics for `n` outside `2..=7` (graph materialization).
#[must_use]
pub fn star_mesh_embedding(n: usize) -> Embedding {
    assert!(
        (2..=7).contains(&n),
        "materialization supported for 2 <= n <= 7"
    );
    let dn = sg_mesh::dn::DnMesh::new(n);
    let shape = dn.shape().clone();
    let guest = shape.to_csr();
    let host = sg_graph::builders::star_graph(n);
    let vertex_map: Vec<NodeId> = (0..dn.node_count())
        .map(|idx| {
            sg_perm::lehmer::rank(&crate::convert::convert_d_s(&shape.point_at(idx))) as NodeId
        })
        .collect();
    let mut edge_paths = Vec::new();
    for (a, b) in guest.edges() {
        let da = shape.point_at(u64::from(a));
        let db = shape.point_at(u64::from(b));
        // Find the dimension along which they differ.
        let k = (1..n)
            .find(|&k| da.d(k) != db.d(k))
            .expect("mesh edge differs in one dimension");
        let plus = db.d(k) == da.d(k) + 1;
        let pi = crate::convert::convert_d_s(&da);
        let path = crate::paths::dilation3_path(&pi, k, plus)
            .expect("neighbor exists for a real mesh edge");
        edge_paths.push(
            path.iter()
                .map(|p| sg_perm::lehmer::rank(p) as NodeId)
                .collect(),
        );
    }
    Embedding {
        guest,
        host,
        vertex_map,
        edge_paths,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_mesh_embedding_metrics() {
        for n in 2..=6usize {
            let e = star_mesh_embedding(n);
            let m = e.analyze().expect("valid embedding");
            assert!((m.expansion - 1.0).abs() < 1e-12, "n={n}: expansion 1");
            let expected_dilation = if n == 2 { 1 } else { 3 };
            assert_eq!(m.dilation, expected_dilation, "n={n}");
            assert!(m.congestion >= 1);
        }
    }

    #[test]
    fn validation_catches_duplicate_images() {
        let mut e = star_mesh_embedding(3);
        e.vertex_map[1] = e.vertex_map[0];
        assert!(matches!(e.analyze(), Err(EmbeddingError::BadVertexMap(_))));
    }

    #[test]
    fn validation_catches_bad_paths() {
        let mut e = star_mesh_embedding(3);
        // Break the first path's endpoint.
        let last = e.edge_paths[0].len() - 1;
        e.edge_paths[0][last] = e.edge_paths[0][0];
        assert!(matches!(e.analyze(), Err(EmbeddingError::BadPath(_))));
    }

    #[test]
    fn validation_catches_non_simple_paths() {
        let mut e = star_mesh_embedding(3);
        // Insert a back-and-forth detour.
        let p = &mut e.edge_paths[0];
        let first = p[0];
        let second = p[1];
        let mut detour = vec![first, second, first];
        detour.extend_from_slice(&p[1..]);
        *p = detour;
        assert!(matches!(e.analyze(), Err(EmbeddingError::BadPath(_))));
    }

    #[test]
    fn host_too_small_detected() {
        let guest = sg_graph::builders::complete_graph(3);
        let host = sg_graph::builders::path_graph(2);
        let e = Embedding {
            guest,
            host,
            vertex_map: vec![0, 1, 2],
            edge_paths: vec![],
        };
        assert_eq!(e.analyze(), Err(EmbeddingError::HostTooSmall));
    }
}
