//! Lemma 3: closed-form star-graph images of mesh neighbors.
//!
//! Let `π` be the star node of mesh node `(d_{n-1}, …, d_1)` and write
//! `a_k` for the symbol at paper position `k` (our slot `n−1−k`).
//! Lemma 3 states that the images of the mesh neighbors along
//! dimension `k` are *symbol transpositions* of `π`:
//!
//! * `π_{k+}` (coordinate `d_k + 1`) swaps `a_k` with
//!   `max { a_t | a_t < a_k, t < k }`,
//! * `π_{k−}` (coordinate `d_k − 1`) swaps `a_k` with
//!   `min { a_t | a_t > a_k, t < k }`,
//!
//! where `t` ranges over paper positions to the *right* of `k`. When
//! the respective set is empty the neighbor does not exist (the mesh
//! coordinate is at its boundary). This gives `O(n)` neighbor
//! computation versus the `O(n²)` convert-roundtrip, and — because a
//! symbol transposition not involving the front symbol is at star
//! distance exactly 3 (Lemma 2) — it is the engine of the dilation-3
//! result (Theorem 4).

use sg_perm::Perm;

/// Star image of the mesh neighbor along dimension `k` with
/// coordinate `d_k + 1`; `None` if `d_k = k` (boundary).
///
/// # Panics
/// Panics unless `1 ≤ k ≤ n−1`.
#[must_use]
pub fn mesh_neighbor_plus(pi: &Perm, k: usize) -> Option<Perm> {
    let (ak, al) = plus_swap_symbols(pi, k)?;
    Some(pi.with_symbols_swapped(ak, al))
}

/// Star image of the mesh neighbor along dimension `k` with
/// coordinate `d_k − 1`; `None` if `d_k = 0` (boundary).
///
/// # Panics
/// Panics unless `1 ≤ k ≤ n−1`.
#[must_use]
pub fn mesh_neighbor_minus(pi: &Perm, k: usize) -> Option<Perm> {
    let (ak, am) = minus_swap_symbols(pi, k)?;
    Some(pi.with_symbols_swapped(ak, am))
}

/// The symbol pair `(a_k, a_l)` that [`mesh_neighbor_plus`] swaps,
/// or `None` at the boundary. Exposed because the Theorem-6 router
/// needs the pair itself, not just the resulting node.
#[must_use]
pub fn plus_swap_symbols(pi: &Perm, k: usize) -> Option<(u8, u8)> {
    let n = pi.len();
    assert!(k >= 1 && k < n, "dimension k = {k} out of range 1..{n}");
    let slot_k = n - 1 - k;
    let ak = pi.symbol_at(slot_k);
    // Paper positions t < k are our slots > slot_k.
    let al = (slot_k + 1..n)
        .map(|s| pi.symbol_at(s))
        .filter(|&s| s < ak)
        .max()?;
    Some((ak, al))
}

/// The symbol pair `(a_k, a_m)` that [`mesh_neighbor_minus`] swaps,
/// or `None` at the boundary.
#[must_use]
pub fn minus_swap_symbols(pi: &Perm, k: usize) -> Option<(u8, u8)> {
    let n = pi.len();
    assert!(k >= 1 && k < n, "dimension k = {k} out of range 1..{n}");
    let slot_k = n - 1 - k;
    let ak = pi.symbol_at(slot_k);
    let am = (slot_k + 1..n)
        .map(|s| pi.symbol_at(s))
        .filter(|&s| s > ak)
        .min()?;
    Some((ak, am))
}

/// All existing mesh neighbors of `pi` (as star nodes), dimension-
/// major with `+` before `−` — the star-side mirror of
/// `MeshShape::neighbors`.
#[must_use]
pub fn all_mesh_neighbors(pi: &Perm) -> Vec<(usize, bool, Perm)> {
    let n = pi.len();
    let mut out = Vec::with_capacity(2 * (n - 1));
    for k in 1..n {
        if let Some(q) = mesh_neighbor_plus(pi, k) {
            out.push((k, true, q));
        }
        if let Some(q) = mesh_neighbor_minus(pi, k) {
            out.push((k, false, q));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::{convert_d_s, convert_s_d};
    use proptest::prelude::*;
    use sg_mesh::dn::DnMesh;
    use sg_mesh::shape::Sign;
    use sg_mesh::MeshPoint;

    #[test]
    fn paper_example_pi_3_plus_minus() {
        // π = (2 3 4 0 1) corresponds to (2,1,0,1); π_{3+} = (2 1 4 0 3),
        // π_{3-} = (2 4 3 0 1).
        let pi = Perm::from_slice(&[2, 3, 4, 0, 1]).unwrap();
        assert_eq!(convert_s_d(&pi).to_string(), "(2,1,0,1)");
        assert_eq!(
            mesh_neighbor_plus(&pi, 3).unwrap().as_slice(),
            &[2, 1, 4, 0, 3]
        );
        assert_eq!(
            mesh_neighbor_minus(&pi, 3).unwrap().as_slice(),
            &[2, 4, 3, 0, 1]
        );
    }

    #[test]
    fn matches_convert_roundtrip_exhaustively() {
        for n in 2..=7usize {
            let dn = DnMesh::new(n);
            for d in dn.points() {
                let pi = convert_d_s(&d);
                for k in 1..n {
                    let expect_plus = dn
                        .shape()
                        .neighbor(&d, k, Sign::Plus)
                        .map(|q| convert_d_s(&q));
                    assert_eq!(
                        mesh_neighbor_plus(&pi, k),
                        expect_plus,
                        "n={n} d={d} k={k} (+)"
                    );
                    let expect_minus = dn
                        .shape()
                        .neighbor(&d, k, Sign::Minus)
                        .map(|q| convert_d_s(&q));
                    assert_eq!(
                        mesh_neighbor_minus(&pi, k),
                        expect_minus,
                        "n={n} d={d} k={k} (-)"
                    );
                }
            }
        }
    }

    #[test]
    fn boundary_cases() {
        // Origin: no minus neighbors anywhere; all plus neighbors exist.
        let n = 5;
        let origin = convert_d_s(&MeshPoint::from_ascending(&[0; 4]).unwrap());
        for k in 1..n {
            assert!(mesh_neighbor_minus(&origin, k).is_none());
            assert!(mesh_neighbor_plus(&origin, k).is_some());
        }
        // Far corner (d_i = i): the reverse.
        let corner = convert_d_s(&MeshPoint::from_ascending(&[1, 2, 3, 4]).unwrap());
        for k in 1..n {
            assert!(mesh_neighbor_plus(&corner, k).is_none());
            assert!(mesh_neighbor_minus(&corner, k).is_some());
        }
    }

    #[test]
    fn plus_and_minus_are_inverse_moves() {
        let dn = DnMesh::new(6);
        for (i, d) in dn.points().enumerate() {
            if i % 7 != 0 {
                continue; // sample
            }
            let pi = convert_d_s(&d);
            for k in 1..6 {
                if let Some(q) = mesh_neighbor_plus(&pi, k) {
                    assert_eq!(mesh_neighbor_minus(&q, k), Some(pi));
                }
            }
        }
    }

    #[test]
    fn all_mesh_neighbors_counts_degree() {
        let dn = DnMesh::new(5);
        for d in dn.points() {
            let pi = convert_d_s(&d);
            assert_eq!(all_mesh_neighbors(&pi).len(), dn.shape().degree(&d));
        }
    }

    #[test]
    fn swapped_pair_never_contains_front_for_low_dims() {
        // For k < n-1 the swapped symbols both sit at paper positions
        // <= k < n-1, i.e. never the front symbol — this is why those
        // hops cost exactly 3 (Lemma 2 / Theorem 4).
        let dn = DnMesh::new(6);
        for d in dn.points() {
            let pi = convert_d_s(&d);
            let front = pi.symbol_at(0);
            for k in 1..5 {
                if let Some((a, b)) = plus_swap_symbols(&pi, k) {
                    assert_ne!(a, front);
                    assert_ne!(b, front);
                }
                if let Some((a, b)) = minus_swap_symbols(&pi, k) {
                    assert_ne!(a, front);
                    assert_ne!(b, front);
                }
            }
            // And for k = n-1 the pair ALWAYS contains the front symbol.
            if let Some((a, _)) = plus_swap_symbols(&pi, 5) {
                assert_eq!(a, front);
            }
            if let Some((a, _)) = minus_swap_symbols(&pi, 5) {
                assert_eq!(a, front);
            }
        }
    }

    proptest! {
        #[test]
        fn prop_matches_convert(n in 2usize..=10, seed in any::<u64>(), k_seed in any::<usize>()) {
            let dn = DnMesh::new(n);
            let d = dn.point_at(seed % dn.node_count());
            let k = 1 + k_seed % (n - 1);
            let pi = convert_d_s(&d);
            let expect = dn.shape().neighbor(&d, k, Sign::Plus).map(|q| convert_d_s(&q));
            prop_assert_eq!(mesh_neighbor_plus(&pi, k), expect);
            let expect_m = dn.shape().neighbor(&d, k, Sign::Minus).map(|q| convert_d_s(&q));
            prop_assert_eq!(mesh_neighbor_minus(&pi, k), expect_m);
        }
    }
}
