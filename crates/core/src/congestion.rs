//! Lemma 5's non-blocking property and congestion metrics.
//!
//! **Lemma 5 / Theorem 6.** When *every* PE simultaneously routes its
//! message along mesh dimension `k` (one SIMD-A mesh unit route), each
//! message follows its dilation-3 (or 1) path, and the paths never
//! collide: at every time step each star node carries at most one
//! in-transit message. Hence the whole mesh route finishes in 3
//! SIMD-B star unit routes.
//!
//! [`verify_lemma5`] checks the property *exhaustively* for a given
//! `(n, k, direction)`: it advances all `participating` messages in
//! lockstep and asserts (a) every hop is a star edge, (b) no two
//! messages occupy the same node at the same step, which simultaneously
//! guarantees each PE sends ≤ 1 and receives ≤ 1 message per unit
//! route. [`static_congestion`] additionally reports the classical
//! §3.1 congestion of the whole embedding (all mesh edges' paths
//! overlaid), a metric the paper defines but never numbers.

use crate::convert::convert_d_s;
use crate::paths::dilation3_path;
use rayon::prelude::*;
use sg_mesh::dn::DnMesh;
use sg_perm::lehmer::rank;
use sg_perm::Perm;
use std::collections::HashMap;

/// Maximum steps any dilation path takes (Theorem 4).
pub const MAX_STEPS: usize = 3;

/// Report of one Lemma-5 verification run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lemma5Report {
    /// Star order.
    pub n: usize,
    /// Mesh dimension routed.
    pub k: usize,
    /// `true` for the `d_k + 1` direction.
    pub plus: bool,
    /// Number of messages (mesh nodes with an existing neighbor).
    pub messages: u64,
    /// Star unit routes needed (max path length over messages).
    pub unit_routes: usize,
}

/// Exhaustively verifies Lemma 5 for routing along dimension `k` of
/// `D_n` in the given direction.
///
/// # Errors
/// Returns a description of the first conflict found (there should be
/// none — a failure falsifies the implementation, not the paper).
///
/// # Panics
/// Panics for `n` outside `2..=9` (sweep size).
pub fn verify_lemma5(n: usize, k: usize, plus: bool) -> Result<Lemma5Report, String> {
    assert!(
        (2..=9).contains(&n),
        "exhaustive sweep supported for 2 <= n <= 9"
    );
    assert!(k >= 1 && k < n, "dimension out of range");
    let dn = DnMesh::new(n);
    let shape = dn.shape().clone();

    // Build every message's path (parallel), keyed by source rank.
    let paths: Vec<Vec<Perm>> = (0..dn.node_count())
        .into_par_iter()
        .filter_map(|idx| {
            let d = shape.point_at(idx);
            let pi = convert_d_s(&d);
            dilation3_path(&pi, k, plus)
        })
        .collect();

    let messages = paths.len() as u64;
    let unit_routes = paths.iter().map(|p| p.len() - 1).max().unwrap_or(0);

    // Lockstep occupancy check: at each step s, the multiset of
    // message positions must be duplicate-free. (Messages that have
    // already arrived stay parked at their destination and still
    // occupy it — Lemma 5's paths all have equal length per (k, ±),
    // so no parked/moving mix actually occurs; we keep parked
    // messages in the check to be stricter than the paper.)
    for s in 1..=unit_routes {
        let mut seen: HashMap<u64, u64> = HashMap::with_capacity(paths.len() * 2);
        for path in &paths {
            let pos = path[s.min(path.len() - 1)];
            let r = rank(&pos);
            if let Some(prev) = seen.insert(r, r) {
                return Err(format!(
                    "step {s}: node {pos} holds two messages (rank {prev})"
                ));
            }
        }
    }
    Ok(Lemma5Report {
        n,
        k,
        plus,
        messages,
        unit_routes,
    })
}

/// Verifies Lemma 5 for **all** dimensions and directions of `D_n`,
/// returning one report per `(k, ±)`.
///
/// # Errors
/// Propagates the first failure.
pub fn verify_lemma5_all(n: usize) -> Result<Vec<Lemma5Report>, String> {
    let mut out = Vec::with_capacity(2 * (n - 1));
    for k in 1..n {
        for plus in [true, false] {
            out.push(verify_lemma5(n, k, plus)?);
        }
    }
    Ok(out)
}

/// Static congestion of the embedding (§3.1 definition): overlay the
/// paths of *all* mesh edges (both directions collapse to one
/// undirected path) and report the most-used star edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CongestionReport {
    /// Star order.
    pub n: usize,
    /// Congestion: max paths through any single star edge.
    pub congestion: u64,
    /// Number of distinct star edges used by at least one path.
    pub edges_used: u64,
    /// Total star edges: `n! · (n−1) / 2`.
    pub edges_total: u64,
}

/// Computes the static congestion of the embedding of `D_n`.
///
/// # Panics
/// Panics for `n` outside `2..=8`.
#[must_use]
pub fn static_congestion(n: usize) -> CongestionReport {
    assert!((2..=8).contains(&n), "sweep supported for 2 <= n <= 8");
    let dn = DnMesh::new(n);
    let shape = dn.shape().clone();
    // Fold per-node edge overlays into per-chunk maps, then merge the
    // partial maps (additive, hence associative — the shim's
    // fold/reduce pair gives chunking-independent results).
    let usage: HashMap<(u64, u64), u64> = (0..dn.node_count())
        .into_par_iter()
        .fold(HashMap::new, |mut usage: HashMap<(u64, u64), u64>, idx| {
            let d = shape.point_at(idx);
            let pi = convert_d_s(&d);
            for k in 1..n {
                // '+' direction only: the '-' path of the neighbor is
                // the same undirected mesh edge (its canonical path may
                // differ; we charge each undirected mesh edge once, in
                // canonical '+' orientation, matching the §3.1
                // definition of one path per guest edge).
                if let Some(path) = dilation3_path(&pi, k, true) {
                    for w in path.windows(2) {
                        let a = rank(&w[0]);
                        let b = rank(&w[1]);
                        let key = (a.min(b), a.max(b));
                        *usage.entry(key).or_insert(0) += 1;
                    }
                }
            }
            usage
        })
        .reduce(HashMap::new, |mut a, b| {
            for (key, v) in b {
                *a.entry(key).or_insert(0) += v;
            }
            a
        });
    let total = sg_perm::factorial::factorial(n) * (n as u64 - 1) / 2;
    CongestionReport {
        n,
        congestion: usage.values().copied().max().unwrap_or(0),
        edges_used: usage.len() as u64,
        edges_total: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma5_holds_for_all_dims_small() {
        for n in 2..=6usize {
            let reports = verify_lemma5_all(n).expect("no conflicts");
            for r in &reports {
                // Dimension n-1 needs 1 route; all others exactly 3
                // (Theorem 6's bound is met with equality).
                let expect = if r.k == n - 1 { 1 } else { 3 };
                assert_eq!(r.unit_routes, expect, "n={n} k={} plus={}", r.k, r.plus);
            }
        }
    }

    #[test]
    fn lemma5_message_counts() {
        // Along dimension k, nodes with d_k < k participate in '+':
        // count = n! * k/(k+1).
        let n = 5;
        for k in 1..n {
            let r = verify_lemma5(n, k, true).unwrap();
            let total = sg_perm::factorial::factorial(n);
            assert_eq!(r.messages, total * k as u64 / (k as u64 + 1));
            let rm = verify_lemma5(n, k, false).unwrap();
            assert_eq!(rm.messages, r.messages);
        }
    }

    #[test]
    fn theorem6_unit_route_bound() {
        // A full mesh unit route costs at most 3 star unit routes.
        for n in 3..=6usize {
            for r in verify_lemma5_all(n).unwrap() {
                assert!(r.unit_routes <= MAX_STEPS);
            }
        }
    }

    #[test]
    fn static_congestion_is_small_and_reported() {
        for n in 3..=6usize {
            let rep = static_congestion(n);
            assert!(rep.congestion >= 1, "n={n}");
            assert!(rep.edges_used <= rep.edges_total);
            // The embedding uses a bounded number of paths per edge;
            // congestion stays O(n) in practice.
            assert!(
                rep.congestion <= 2 * n as u64,
                "n={n}: congestion {} unexpectedly large",
                rep.congestion
            );
        }
    }

    #[test]
    fn every_star_edge_of_dimension_paths_is_real() {
        // verify_lemma5 would already fail on a non-edge (distinct
        // occupancy implies movement along constructed paths); this
        // double-checks via adjacency on a sample.
        let n = 5;
        let star = sg_star::StarGraph::new(n);
        let dn = DnMesh::new(n);
        for idx in (0..dn.node_count()).step_by(11) {
            let d = dn.point_at(idx);
            let pi = convert_d_s(&d);
            for k in 1..n {
                if let Some(p) = dilation3_path(&pi, k, false) {
                    for w in p.windows(2) {
                        assert!(star.are_adjacent(&w[0], &w[1]));
                    }
                }
            }
        }
    }
}
