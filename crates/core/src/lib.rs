//! # sg-core — the paper's embedding
//!
//! The primary contribution of Ranka, Wang & Yeh (*Embedding Meshes on
//! the Star Graph*, SC'90): an **expansion-1, dilation-3** embedding
//! of the `(n−1)`-dimensional mesh `D_n = 2 × 3 × ⋯ × n` into the star
//! graph `S_n`.
//!
//! * [`convert`] — the two `O(n²)` coordinate converters of Figures 5
//!   and 6 (`CONVERT-D-S`, `CONVERT-S-D`) plus the Table-1 symbol-
//!   exchange formulation;
//! * [`lemma3`] — closed-form `O(n)` computation of the star-graph
//!   images of a node's mesh neighbors (`π_{k+}`, `π_{k−}`);
//! * [`paths`] — the constructive dilation-3 paths of Lemma 2 and the
//!   per-mesh-edge router;
//! * [`dilation`] — Lemma 1 (no dilation-1 embedding) and the
//!   exhaustive Theorem-4 dilation audit;
//! * [`congestion`] — Lemma 5's non-blocking property (the schedule
//!   validity behind Theorem 6) and static edge-congestion metrics;
//! * [`embedding`] — the generic §3.1 embedding framework (vertex
//!   maps, edge-to-path maps, expansion/dilation/congestion);
//! * [`fig4`] — the worked example of Figure 4;
//! * [`tenancy`] — the embedding relabeled into a sub-star of a
//!   larger host (`D_m` onto an order-`m` sub-star of `S_n`), the
//!   vertex mapping behind multi-tenant scheduling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod congestion;
pub mod convert;
pub mod dilation;
pub mod embedding;
pub mod fig4;
pub mod lemma3;
pub mod paths;
pub mod tenancy;

pub use convert::{convert_d_s, convert_s_d};
pub use embedding::{Embedding, EmbeddingMetrics};
