//! Lemma 1 and the Theorem-4 dilation audit.
//!
//! * **Lemma 1**: no dilation-1 embedding of `D_n` into `S_n` exists
//!   for `n > 2`, because the mesh node `(1, 1, …, 1)` has degree
//!   `2n − 3 > n − 1`.
//! * **Theorem 4**: the CONVERT embedding has dilation 3. We *audit*
//!   this exhaustively: for every mesh edge, the star distance between
//!   the images is computed with the exact distance formula and
//!   histogrammed; the result must be `{1, 3}` with maximum 3.
//!
//! Audits sweep all `n!` nodes and are rayon-parallel over node
//! indices (per the HPC guides); `n = 9` (362 880 nodes, ~3 M edges)
//! runs in well under a second.

use crate::convert::convert_d_s;
use crate::lemma3::mesh_neighbor_plus;
use rayon::prelude::*;
use sg_mesh::dn::DnMesh;
use sg_mesh::shape::Sign;
use sg_star::distance::distance;

/// Lemma 1's inequality: `true` iff a dilation-1 embedding is
/// impossible, i.e. `2n − 3 > n − 1` ⟺ `n > 2`.
#[must_use]
pub fn lemma1_dilation1_impossible(n: usize) -> bool {
    n > 2 && 2 * n - 3 > n - 1
}

/// Degree comparison backing Lemma 1: `(max mesh degree, star degree)`.
#[must_use]
pub fn lemma1_degrees(n: usize) -> (usize, usize) {
    (DnMesh::new(n).max_degree(), n - 1)
}

/// Outcome of an exhaustive dilation audit of the embedding of `D_n`
/// into `S_n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DilationReport {
    /// Star-graph order audited.
    pub n: usize,
    /// Number of (undirected) mesh edges checked.
    pub edges: u64,
    /// `histogram[d]` = number of mesh edges whose images lie at star
    /// distance `d`.
    pub histogram: Vec<u64>,
}

impl DilationReport {
    /// The measured dilation (largest distance observed).
    #[must_use]
    pub fn dilation(&self) -> u32 {
        (self.histogram.len() as u32).saturating_sub(1)
    }

    /// `true` iff every distance is 1 or 3 (the Theorem-4 /
    /// Lemma-2 shape).
    #[must_use]
    pub fn is_one_or_three(&self) -> bool {
        self.histogram
            .iter()
            .enumerate()
            .all(|(d, &c)| c == 0 || d == 1 || d == 3)
    }
}

/// Exhaustive Theorem-4 audit over every mesh edge of `D_n`.
///
/// For each node (parallel over mesh indices) and each dimension with
/// an existing `+` neighbor, computes the star distance between the
/// convert images. (The `−` edges are the same undirected set.)
///
/// # Panics
/// Panics if `n < 2` or the mesh is too large to sweep (`n > 11`).
#[must_use]
pub fn audit_dilation(n: usize) -> DilationReport {
    assert!(
        (2..=11).contains(&n),
        "exhaustive audit supported for 2 <= n <= 11"
    );
    let dn = DnMesh::new(n);
    let shape = dn.shape().clone();
    let per_node: Vec<Vec<u64>> = (0..dn.node_count())
        .into_par_iter()
        .map(|idx| {
            let d = shape.point_at(idx);
            let pi = convert_d_s(&d);
            let mut hist = vec![0u64; 4];
            for k in 1..n {
                if shape.neighbor(&d, k, Sign::Plus).is_some() {
                    let q = mesh_neighbor_plus(&pi, k)
                        .expect("lemma 3 neighbor exists where mesh neighbor does");
                    let dist = distance(&pi, &q) as usize;
                    if hist.len() <= dist {
                        hist.resize(dist + 1, 0);
                    }
                    hist[dist] += 1;
                }
            }
            hist
        })
        .collect();
    let maxlen = per_node.iter().map(Vec::len).max().unwrap_or(0);
    let mut histogram = vec![0u64; maxlen];
    for h in per_node {
        for (d, c) in h.into_iter().enumerate() {
            histogram[d] += c;
        }
    }
    while histogram.last() == Some(&0) {
        histogram.pop();
    }
    let edges = histogram.iter().sum();
    DilationReport {
        n,
        edges,
        histogram,
    }
}

/// Expected number of undirected edges of `D_n`:
/// `Σ_k (l_k − 1) · Π_{j≠k} l_j = n! · Σ_k (l_k − 1)/l_k`.
#[must_use]
pub fn expected_mesh_edges(n: usize) -> u64 {
    let total = sg_perm::factorial::factorial(n);
    (2..=n as u64).map(|l| total / l * (l - 1)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma1_threshold() {
        assert!(!lemma1_dilation1_impossible(2));
        for n in 3..=12 {
            assert!(lemma1_dilation1_impossible(n), "n={n}");
            let (mesh_deg, star_deg) = lemma1_degrees(n);
            assert!(mesh_deg > star_deg);
        }
        // n = 2: D_2 is a single edge, S_2 a single edge — dilation 1
        // exists (and the audit below confirms it).
        let (m2, s2) = lemma1_degrees(2);
        assert!(m2 <= s2);
    }

    #[test]
    fn theorem4_audit_small() {
        for n in 3..=7usize {
            let report = audit_dilation(n);
            assert_eq!(report.dilation(), 3, "n={n}");
            assert!(report.is_one_or_three(), "n={n}: {:?}", report.histogram);
            assert_eq!(report.edges, expected_mesh_edges(n), "n={n}");
            assert_eq!(report.histogram[0], 0);
            assert_eq!(report.histogram[2], 0);
        }
    }

    #[test]
    fn n2_has_dilation_one() {
        let report = audit_dilation(2);
        assert_eq!(report.dilation(), 1);
        assert_eq!(report.edges, 1);
    }

    #[test]
    fn distance_one_edges_are_exactly_dimension_nminus1() {
        // Dimension n-1 contributes n!·(n-1)/n edges, all at distance 1;
        // everything else is at distance 3.
        for n in 3..=7usize {
            let report = audit_dilation(n);
            let total = sg_perm::factorial::factorial(n);
            let dim_top_edges = total / n as u64 * (n as u64 - 1);
            assert_eq!(report.histogram[1], dim_top_edges, "n={n}");
            assert_eq!(
                report.histogram[3],
                expected_mesh_edges(n) - dim_top_edges,
                "n={n}"
            );
        }
    }

    #[test]
    fn expected_edges_formula_matches_figure3() {
        assert_eq!(expected_mesh_edges(4), 46);
    }
}
