//! # sg-algo — SIMD mesh algorithms, runnable on the star graph
//!
//! The paper's motivation (§1) is that "most algorithms for the
//! (n−1)-dimensional mesh … can be efficiently simulated on the star
//! graph": any `T(n)`-unit-route mesh algorithm costs at most `3·T(n)`
//! star unit routes (Theorem 6). This crate supplies the algorithms —
//! written **once** against the `sg_simd::MeshSimd` interface and
//! therefore runnable unchanged on
//!
//! * the native SIMD-A mesh machine,
//! * the star graph through the dilation-3 embedding
//!   (`EmbeddedMeshMachine`), and
//! * (for 2-D algorithms) the Appendix's grouped-dimension view of
//!   `D_n` via [`grouped::GroupedMachine`] — stacking all the way to
//!   *shearsort on the star graph* (§5).
//!
//! Modules: [`broadcast`] (dimension-sweep one-to-all, `[NASS81]`),
//! [`scan`] (prefix combine), [`reduce`] (all-reduce), [`oddeven`]
//! (odd-even transposition sort), [`shearsort`] (`[SCHE89]`),
//! [`stencil`] (the intro's image-smoothing workload), [`grouped`]
//! (Appendix snake linearization), [`util`] (register copies, snake
//! order checks).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broadcast;
pub mod grouped;
pub mod oddeven;
pub mod reduce;
pub mod scan;
pub mod shearsort;
pub mod stencil;
pub mod util;
