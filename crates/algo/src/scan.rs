//! Prefix combine (scan) along one mesh dimension.
//!
//! Ripple scan: after `t` unit routes, PE `c` holds
//! `op(A(c−t), …, A(c))`; after `l−1` routes every PE holds the
//! inclusive prefix of its line. The combine operator must be
//! associative (sum, min, max, …).

use sg_mesh::shape::Sign;
use sg_simd::MeshSimd;

/// In-place inclusive prefix scan of `reg` along `dim` with the
/// associative operator `op` (applied as `acc = op(prev, acc)` with
/// `prev` the lower-coordinate side). Returns the unit routes used
/// (`l_dim − 1`).
pub fn scan<T, M, F>(m: &mut M, reg: &str, dim: usize, op: F) -> u64
where
    T: Clone,
    M: MeshSimd<T>,
    F: Fn(&T, &T) -> T,
{
    let shape = m.shape().clone();
    let l = shape.extent(dim);
    let carry = "__scan_carry";
    crate::util::copy_reg(m, reg, carry);
    let mut routes = 0u64;
    for t in 1..l {
        m.route(carry, dim, Sign::Plus);
        routes += 1;
        // Only PEs with coordinate >= t receive a meaningful carry.
        m.combine(reg, carry, &mut |p, dst, src| {
            if p.d(dim) as usize >= t {
                *dst = op(src, dst);
            }
        });
        // The carry register keeps rippling: it must hold the sum of a
        // window; re-stage from the accumulated prefix is wrong — keep
        // the raw shifted original values instead? No: for an
        // associative op the textbook ripple uses the ORIGINAL values
        // shifting past; `carry` was initialized from reg before the
        // loop and only ever shifted, so at step t PE c holds A(c-t).
    }
    routes
}

/// Exclusive scan helper: like [`scan`] but each PE ends with the
/// combine of *strictly lower* coordinates; PEs at coordinate 0 get
/// `identity`.
pub fn exclusive_scan<T, M, F>(m: &mut M, reg: &str, dim: usize, identity: T, op: F) -> u64
where
    T: Clone,
    M: MeshSimd<T>,
    F: Fn(&T, &T) -> T,
{
    // Shift by one, seed coordinate 0 with the identity, then scan.
    m.route(reg, dim, Sign::Plus);
    let id = identity;
    m.update(reg, &mut |p, v| {
        if p.d(dim) == 0 {
            *v = id.clone();
        }
    });
    1 + scan(m, reg, dim, op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_mesh::shape::MeshShape;
    use sg_simd::{EmbeddedMeshMachine, MeshMachine, MeshSimd};

    #[test]
    fn inclusive_sum_1d() {
        let mut m: MeshMachine<u64> = MeshMachine::new(MeshShape::new(&[6]).unwrap());
        m.load("A", vec![1, 2, 3, 4, 5, 6]);
        let routes = scan(&mut m, "A", 1, |a, b| a + b);
        assert_eq!(routes, 5);
        assert_eq!(m.read("A"), vec![1, 3, 6, 10, 15, 21]);
    }

    #[test]
    fn inclusive_max_rowwise_2d() {
        // Scan along dim 1 of a 3x2 mesh treats each row independently.
        let mut m: MeshMachine<u64> = MeshMachine::new(MeshShape::new(&[3, 2]).unwrap());
        m.load("A", vec![3, 1, 2, 0, 5, 4]);
        scan(&mut m, "A", 1, |a, b| *a.max(b));
        assert_eq!(m.read("A"), vec![3, 3, 3, 0, 5, 5]);
    }

    #[test]
    fn exclusive_sum_1d() {
        let mut m: MeshMachine<u64> = MeshMachine::new(MeshShape::new(&[5]).unwrap());
        m.load("A", vec![1, 2, 3, 4, 5]);
        let routes = exclusive_scan(&mut m, "A", 1, 0, |a, b| a + b);
        assert_eq!(routes, 5);
        assert_eq!(m.read("A"), vec![0, 1, 3, 6, 10]);
    }

    #[test]
    fn scan_on_star_matches_mesh() {
        for n in 3..=5usize {
            for dim in 1..n {
                let dn = sg_mesh::dn::DnMesh::new(n);
                let size = dn.node_count() as usize;
                let data: Vec<u64> = (0..size as u64).map(|x| x % 7 + 1).collect();

                let mut native: MeshMachine<u64> = MeshMachine::new(dn.shape().clone());
                native.load("A", data.clone());
                scan(&mut native, "A", dim, |a, b| a + b);

                let mut emb: EmbeddedMeshMachine<u64> = EmbeddedMeshMachine::new(n);
                emb.load("A", data);
                let mesh_routes = scan(&mut emb, "A", dim, |a, b| a + b);

                assert_eq!(native.read("A"), emb.read("A"), "n={n} dim={dim}");
                assert!(emb.stats().physical_routes <= 3 * mesh_routes);
            }
        }
    }

    #[test]
    fn scan_noncommutative_op_respects_order() {
        // String concatenation is associative but not commutative.
        let mut m: MeshMachine<String> = MeshMachine::new(MeshShape::new(&[4]).unwrap());
        m.load(
            "A",
            vec![
                "a".to_string(),
                "b".to_string(),
                "c".to_string(),
                "d".to_string(),
            ],
        );
        scan(&mut m, "A", 1, |lo, hi| format!("{lo}{hi}"));
        assert_eq!(
            m.read("A"),
            vec![
                "a".to_string(),
                "ab".to_string(),
                "abc".to_string(),
                "abcd".to_string()
            ]
        );
    }
}
