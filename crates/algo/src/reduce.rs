//! Reductions: fold a dimension (or the whole mesh) with an
//! associative operator, then optionally broadcast the result back.

use sg_mesh::shape::Sign;
use sg_simd::MeshSimd;

/// Reduces `reg` along `dim` towards coordinate 0: afterwards every
/// PE with `d_dim = 0` holds the combine of its whole line (other PEs
/// hold garbage). Returns unit routes used (`l_dim − 1`).
pub fn reduce_dim<T, M, F>(m: &mut M, reg: &str, dim: usize, op: F) -> u64
where
    T: Clone,
    M: MeshSimd<T>,
    F: Fn(&T, &T) -> T,
{
    let shape = m.shape().clone();
    let l = shape.extent(dim);
    let carry = "__reduce_carry";
    let mut routes = 0u64;
    // Sequential fold from the high end: after step t, PE at
    // coordinate l-1-t holds the combine of coordinates l-1-t..l-1.
    for t in 1..l {
        crate::util::copy_reg(m, reg, carry);
        m.route(carry, dim, Sign::Minus);
        routes += 1;
        let target = (l - 1 - t) as u32;
        m.combine(reg, carry, &mut |p, dst, src| {
            if p.d(dim) >= target {
                // Keep folding on every PE still "active"; only the
                // final coordinate-0 value is contractually defined,
                // but folding the whole suffix keeps the loop uniform.
                *dst = op(dst, src);
            }
        });
    }
    routes
}

/// Full all-reduce: every PE ends with the combine of the entire mesh.
/// Folds each dimension to its 0-hyperplane, then broadcasts back by
/// sweeping in the `+` direction. Costs `2·Σ(l_i − 1)` unit routes.
pub fn all_reduce<T, M, F>(m: &mut M, reg: &str, op: F) -> u64
where
    T: Clone,
    M: MeshSimd<T>,
    F: Fn(&T, &T) -> T,
{
    let shape = m.shape().clone();
    let mut routes = 0u64;
    for dim in 1..=shape.dims() {
        routes += reduce_dim(m, reg, dim, &op);
    }
    // The total now lives at the origin; sweep it back out dimension
    // by dimension (overwrite semantics of route do exactly this).
    for dim in 1..=shape.dims() {
        for _ in 1..shape.extent(dim) {
            m.route(reg, dim, Sign::Plus);
            routes += 1;
        }
    }
    routes
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_mesh::shape::MeshShape;
    use sg_simd::{EmbeddedMeshMachine, MeshMachine, MeshSimd};

    #[test]
    fn reduce_line_to_zero() {
        let mut m: MeshMachine<u64> = MeshMachine::new(MeshShape::new(&[5]).unwrap());
        m.load("A", vec![1, 2, 3, 4, 5]);
        let routes = reduce_dim(&mut m, "A", 1, |a, b| a + b);
        assert_eq!(routes, 4);
        assert_eq!(m.read("A")[0], 15);
    }

    #[test]
    fn reduce_each_row_independently() {
        let mut m: MeshMachine<u64> = MeshMachine::new(MeshShape::new(&[3, 2]).unwrap());
        m.load("A", vec![1, 2, 3, 10, 20, 30]);
        reduce_dim(&mut m, "A", 1, |a, b| a + b);
        let out = m.read("A");
        assert_eq!(out[0], 6);
        assert_eq!(out[3], 60);
    }

    #[test]
    fn all_reduce_sum_everywhere() {
        let shape = MeshShape::new(&[4, 3]).unwrap();
        let mut m: MeshMachine<u64> = MeshMachine::new(shape.clone());
        let data: Vec<u64> = (1..=12).collect();
        let total: u64 = data.iter().sum();
        m.load("A", data);
        let routes = all_reduce(&mut m, "A", |a, b| a + b);
        assert_eq!(routes, 2 * shape.diameter());
        assert!(m.read("A").iter().all(|&v| v == total));
    }

    #[test]
    fn all_reduce_min_on_star() {
        for n in 3..=5usize {
            let dn = sg_mesh::dn::DnMesh::new(n);
            let size = dn.node_count() as usize;
            let data: Vec<u64> = (0..size as u64).map(|x| (x * 7919 + 13) % 1000).collect();
            let expect = *data.iter().min().unwrap();

            let mut emb: EmbeddedMeshMachine<u64> = EmbeddedMeshMachine::new(n);
            emb.load("A", data.clone());
            let mesh_routes = all_reduce(&mut emb, "A", |a, b| *a.min(b));
            assert!(emb.read("A").iter().all(|&v| v == expect), "n={n}");
            assert!(emb.stats().physical_routes <= 3 * mesh_routes);

            let mut native: MeshMachine<u64> = MeshMachine::new(dn.shape().clone());
            native.load("A", data);
            all_reduce(&mut native, "A", |a, b| *a.min(b));
            assert_eq!(native.read("A"), emb.read("A"));
        }
    }
}
