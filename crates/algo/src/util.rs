//! Shared helpers: register copies, snake order, sortedness checks.

use sg_mesh::shape::MeshShape;
use sg_simd::MeshSimd;

/// Intraprocessor register copy `dst := src` (free in the §2 cost
/// model — no unit routes).
pub fn copy_reg<T: Clone, M: MeshSimd<T>>(m: &mut M, src: &str, dst: &str) {
    let data = m.read(src);
    m.load(dst, data);
}

/// Snake (boustrophedon) linear order of a 2-D shape: row-major, with
/// odd rows reversed. Returns mesh indices in snake order. Dimension 1
/// runs within rows, dimension 2 enumerates rows.
///
/// # Panics
/// Panics unless the shape is 2-D.
#[must_use]
pub fn snake_order_2d(shape: &MeshShape) -> Vec<u64> {
    assert_eq!(shape.dims(), 2, "snake_order_2d needs a 2-D shape");
    let cols = shape.extent(1) as u64;
    let rows = shape.extent(2) as u64;
    let mut order = Vec::with_capacity((rows * cols) as usize);
    for r in 0..rows {
        if r % 2 == 0 {
            for c in 0..cols {
                order.push(r * cols + c);
            }
        } else {
            for c in (0..cols).rev() {
                order.push(r * cols + c);
            }
        }
    }
    order
}

/// `true` iff `data` read in snake order is non-decreasing.
#[must_use]
pub fn is_sorted_snake<T: Ord>(shape: &MeshShape, data: &[T]) -> bool {
    let order = snake_order_2d(shape);
    order
        .windows(2)
        .all(|w| data[w[0] as usize] <= data[w[1] as usize])
}

/// `true` iff every 1-D line along `dim` is sorted in the direction
/// given by `asc(point)` evaluated at any point of the line.
#[must_use]
pub fn lines_sorted<T: Ord + Clone>(
    shape: &MeshShape,
    data: &[T],
    dim: usize,
    asc: &dyn Fn(&sg_mesh::MeshPoint) -> bool,
) -> bool {
    let l = shape.extent(dim);
    for idx in 0..shape.size() {
        let p = shape.point_at(idx);
        if p.d(dim) as usize + 1 >= l {
            continue;
        }
        let q = p.with_d(dim, p.d(dim) + 1);
        let (a, b) = (
            &data[shape.index_of(&p) as usize],
            &data[shape.index_of(&q) as usize],
        );
        if asc(&p) {
            if a > b {
                return false;
            }
        } else if a < b {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snake_order_3x2() {
        // 3 columns, 2 rows: indices 0 1 2 / 3 4 5; snake = 0 1 2 5 4 3.
        let shape = MeshShape::new(&[3, 2]).unwrap();
        assert_eq!(snake_order_2d(&shape), vec![0, 1, 2, 5, 4, 3]);
    }

    #[test]
    fn snake_sortedness() {
        let shape = MeshShape::new(&[3, 2]).unwrap();
        // Snake-sorted data: 0 1 2 in row 0; row 1 holds 5 4 3 at
        // indices 3,4,5 -> data[3]=5, data[4]=4, data[5]=3.
        let good = vec![0, 1, 2, 5, 4, 3];
        assert!(is_sorted_snake(&shape, &good));
        let bad = vec![0, 1, 2, 3, 4, 5]; // row-major, not snake
        assert!(!is_sorted_snake(&shape, &bad));
    }

    #[test]
    fn lines_sorted_detects_direction() {
        let shape = MeshShape::new(&[3, 2]).unwrap();
        let data = vec![1, 2, 3, 9, 8, 7]; // row 0 asc, row 1 desc
        assert!(lines_sorted(&shape, &data, 1, &|p| p.d(2) % 2 == 0));
        assert!(!lines_sorted(&shape, &data, 1, &|_| true));
    }
}
