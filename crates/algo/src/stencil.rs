//! Neighborhood averaging (the intro's image-processing workload).
//!
//! §1 motivates mesh embeddings with "numerical analysis, image
//! processing, computer vision and pattern recognition" — all
//! stencil-shaped: every PE repeatedly combines its value with its
//! mesh neighbors'. One smoothing iteration gathers both neighbors
//! along every dimension (2 unit routes per dimension) and averages.

use sg_mesh::shape::Sign;
use sg_simd::MeshSimd;

/// Fixed-point value type used by the smoothing kernel: integer
/// micro-units avoid float Ord issues on the generic machines.
pub type Fixed = i64;

/// One Jacobi-style smoothing iteration on `reg` (type [`Fixed`]):
/// each PE becomes the mean of itself and its existing neighbors.
/// Returns unit routes used (`2 × dims`).
pub fn smooth_once<M: MeshSimd<Fixed>>(m: &mut M, reg: &str) -> u64 {
    let shape = m.shape().clone();
    let dims = shape.dims();
    let sum = "__sten_sum";
    let cnt_src = "__sten_in";
    // sum starts as own value; count starts at 1.
    crate::util::copy_reg(m, reg, sum);
    let mut routes = 0u64;
    for dim in 1..=dims {
        for sign in [Sign::Plus, Sign::Minus] {
            crate::util::copy_reg(m, reg, cnt_src);
            m.route(cnt_src, dim, sign);
            routes += 1;
            // Only PEs that actually have a neighbor on that side
            // received a fresh value; boundary PEs kept their own copy,
            // which must not be double counted.
            let shape2 = shape.clone();
            m.combine(sum, cnt_src, &mut |p, acc, inc| {
                if shape2.neighbor(p, dim, sign.flip()).is_some() {
                    *acc += *inc;
                }
            });
        }
    }
    // Divide by 1 + degree, all local.
    let shape3 = shape.clone();
    m.combine(reg, sum, &mut |p, v, s| {
        let k = 1 + shape3.degree(p) as Fixed;
        *v = *s / k;
    });
    routes
}

/// Runs `iters` smoothing iterations; returns total unit routes.
pub fn smooth<M: MeshSimd<Fixed>>(m: &mut M, reg: &str, iters: usize) -> u64 {
    (0..iters).map(|_| smooth_once(m, reg)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_mesh::shape::MeshShape;
    use sg_simd::{EmbeddedMeshMachine, MeshMachine, MeshSimd};

    #[test]
    fn uniform_field_is_fixed_point() {
        let mut m: MeshMachine<Fixed> = MeshMachine::new(MeshShape::new(&[4, 4]).unwrap());
        m.load("I", vec![100; 16]);
        smooth(&mut m, "I", 3);
        assert!(m.read("I").iter().all(|&v| v == 100));
    }

    #[test]
    fn impulse_spreads_and_mass_decays_smoothly() {
        let shape = MeshShape::new(&[5]).unwrap();
        let mut m: MeshMachine<Fixed> = MeshMachine::new(shape);
        m.load("I", vec![0, 0, 900, 0, 0]);
        let routes = smooth_once(&mut m, "I");
        assert_eq!(routes, 2);
        // Center averages with two zeros: 900/3 = 300; its neighbors
        // average self(0)+900+0 over 3 = 300.
        assert_eq!(m.read("I"), vec![0, 300, 300, 300, 0]);
    }

    #[test]
    fn boundary_degrees_respected() {
        // A corner PE of a 2-D mesh has degree 2: mean over 3 values.
        let mut m: MeshMachine<Fixed> = MeshMachine::new(MeshShape::new(&[2, 2]).unwrap());
        m.load("I", vec![90, 0, 0, 0]);
        smooth_once(&mut m, "I");
        assert_eq!(m.read("I"), vec![30, 30, 30, 0]);
    }

    #[test]
    fn star_matches_mesh_on_dn() {
        for n in 3..=5usize {
            let dn = sg_mesh::dn::DnMesh::new(n);
            let size = dn.node_count() as usize;
            let data: Vec<Fixed> = (0..size as i64).map(|x| (x * x) % 997).collect();

            let mut native: MeshMachine<Fixed> = MeshMachine::new(dn.shape().clone());
            native.load("I", data.clone());
            let mesh_routes = smooth(&mut native, "I", 2);

            let mut emb: EmbeddedMeshMachine<Fixed> = EmbeddedMeshMachine::new(n);
            emb.load("I", data);
            smooth(&mut emb, "I", 2);

            assert_eq!(native.read("I"), emb.read("I"), "n={n}");
            assert!(emb.stats().physical_routes <= 3 * mesh_routes, "n={n}");
        }
    }
}
