//! Odd–even transposition sort along one mesh dimension.
//!
//! The classical `O(l)`-phase SIMD line sort (the 1-D base case of the
//! mesh sorting literature the paper cites: `[THOM77]`, `[NASS79]`).
//! Every line along `dim` is sorted independently; the direction of
//! each line is chosen by a caller-supplied predicate — exactly the
//! hook shearsort needs for its boustrophedon rows.
//!
//! Cost: `l` phases × 2 unit routes = `2·l` unit routes.

use sg_mesh::shape::Sign;
use sg_mesh::MeshPoint;
use sg_simd::MeshSimd;

/// Sorts every line along `dim` in place. `asc(point)` gives the
/// line's direction (evaluated per PE; it must be constant along each
/// line — e.g. depend only on the other coordinates). Returns unit
/// routes used (`2·l_dim`).
pub fn odd_even_sort<T, M>(
    m: &mut M,
    reg: &str,
    dim: usize,
    asc: &dyn Fn(&MeshPoint) -> bool,
) -> u64
where
    T: Ord + Clone,
    M: MeshSimd<T>,
{
    let shape = m.shape().clone();
    let l = shape.extent(dim);
    let from_right = "__oes_right"; // holds value of coordinate c+1
    let from_left = "__oes_left"; // holds value of coordinate c-1
    let mut routes = 0u64;
    for phase in 0..l {
        let parity = (phase % 2) as u32;
        crate::util::copy_reg(m, reg, from_right);
        m.route(from_right, dim, Sign::Minus);
        crate::util::copy_reg(m, reg, from_left);
        m.route(from_left, dim, Sign::Plus);
        routes += 2;
        // Compare-exchange pairs (c, c+1) with c ≡ parity (mod 2).
        m.combine(reg, from_right, &mut |p, mine, right| {
            let c = p.d(dim);
            if c % 2 == parity && (c as usize) + 1 < l {
                // Left partner keeps the smaller (ascending) / larger.
                let keep_small = asc(p);
                if (keep_small && *right < *mine) || (!keep_small && *right > *mine) {
                    *mine = right.clone();
                }
            }
        });
        m.combine(reg, from_left, &mut |p, mine, left| {
            let c = p.d(dim);
            if c % 2 != parity && c >= 1 {
                let keep_small = asc(p);
                if (keep_small && *left > *mine) || (!keep_small && *left < *mine) {
                    *mine = left.clone();
                }
            }
        });
    }
    routes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::lines_sorted;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;
    use sg_mesh::shape::MeshShape;
    use sg_simd::{EmbeddedMeshMachine, MeshMachine, MeshSimd};

    #[test]
    fn sorts_a_line_ascending() {
        let mut m: MeshMachine<u64> = MeshMachine::new(MeshShape::new(&[7]).unwrap());
        m.load("A", vec![5, 1, 4, 1, 5, 9, 2]);
        let routes = odd_even_sort(&mut m, "A", 1, &|_| true);
        assert_eq!(routes, 14);
        assert_eq!(m.read("A"), vec![1, 1, 2, 4, 5, 5, 9]);
    }

    #[test]
    fn sorts_descending() {
        let mut m: MeshMachine<u64> = MeshMachine::new(MeshShape::new(&[5]).unwrap());
        m.load("A", vec![3, 1, 4, 1, 5]);
        odd_even_sort(&mut m, "A", 1, &|_| false);
        assert_eq!(m.read("A"), vec![5, 4, 3, 1, 1]);
    }

    #[test]
    fn sorts_rows_boustrophedon() {
        // 4 columns x 3 rows; even rows ascending, odd descending.
        let shape = MeshShape::new(&[4, 3]).unwrap();
        let mut m: MeshMachine<u64> = MeshMachine::new(shape.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let data: Vec<u64> = (0..12).map(|_| rng.gen_range(0..100)).collect();
        m.load("A", data);
        let dir = |p: &MeshPoint| p.d(2).is_multiple_of(2);
        odd_even_sort(&mut m, "A", 1, &dir);
        assert!(lines_sorted(&shape, &m.read("A"), 1, &dir));
    }

    #[test]
    fn multiset_preserved() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let shape = MeshShape::new(&[8]).unwrap();
        let mut m: MeshMachine<u64> = MeshMachine::new(shape);
        let data: Vec<u64> = (0..8).map(|_| rng.gen_range(0..10)).collect();
        let mut expect = data.clone();
        expect.sort_unstable();
        m.load("A", data);
        odd_even_sort(&mut m, "A", 1, &|_| true);
        assert_eq!(m.read("A"), expect);
    }

    #[test]
    fn columns_of_dn_sorted_on_star() {
        // Sort along dimension 3 of D_4 (the length-4 dimension), on
        // both machines; Theorem 6 bounds the physical cost.
        let n = 4;
        let dn = sg_mesh::dn::DnMesh::new(n);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let data: Vec<u64> = (0..24).map(|_| rng.gen_range(0..50)).collect();

        let mut native: MeshMachine<u64> = MeshMachine::new(dn.shape().clone());
        native.load("A", data.clone());
        let mesh_routes = odd_even_sort(&mut native, "A", 3, &|_| true);

        let mut emb: EmbeddedMeshMachine<u64> = EmbeddedMeshMachine::new(n);
        emb.load("A", data);
        odd_even_sort(&mut emb, "A", 3, &|_| true);

        assert_eq!(native.read("A"), emb.read("A"));
        assert!(lines_sorted(dn.shape(), &emb.read("A"), 3, &|_| true));
        assert!(emb.stats().physical_routes <= 3 * mesh_routes);
    }
}
