//! One-to-all broadcast by dimension sweeps (`[NASS81]` style).
//!
//! The value at `source` is spread along dimension 1, then the full
//! hyperplane spreads along dimension 2, and so on — `l_i − 1` unit
//! routes per dimension, `Σ(l_i − 1)` = the mesh diameter in total.
//! On `D_n` that is `1 + 2 + ⋯ + (n−1) = n(n−1)/2` mesh routes, hence
//! at most `3·n(n−1)/2` star routes through the embedding — the
//! mesh-borrowed alternative to the star-native flooding of
//! `sg_star::broadcast` (compared head-to-head in the benches).

use sg_mesh::shape::Sign;
use sg_mesh::MeshPoint;
use sg_simd::MeshSimd;

/// Broadcasts `source`'s value in register `reg` to every PE.
/// `reg` must hold `Option<V>`-typed data (only `source` needs to be
/// `Some`; everything else is overwritten).
///
/// Returns the number of logical mesh unit routes used
/// (`Σ (l_i − 1)`).
///
/// # Panics
/// Panics if `source` lies outside the shape.
pub fn broadcast<V, M>(m: &mut M, reg: &str, source: &MeshPoint) -> u64
where
    V: Clone,
    M: MeshSimd<Option<V>>,
{
    let shape = m.shape().clone();
    shape.check(source).expect("source outside mesh");
    // Mark everything but the source as empty.
    {
        let src = source.clone();
        m.update(reg, &mut |p, v| {
            if *p != src {
                *v = None;
            } else {
                assert!(v.is_some(), "source PE holds no value");
            }
        });
    }
    let mut routes = 0u64;
    let tmp = "__bcast_tmp";
    for dim in 1..=shape.dims() {
        let li = shape.extent(dim);
        let c = source.d(dim) as usize;
        // Spread upward from coordinate c, then downward.
        for (sign, steps) in [(Sign::Plus, li - 1 - c), (Sign::Minus, c)] {
            for _ in 0..steps {
                crate::util::copy_reg(m, reg, tmp);
                m.route(tmp, dim, sign);
                m.combine(reg, tmp, &mut |_, dst, src| {
                    if dst.is_none() && src.is_some() {
                        *dst = src.clone();
                    }
                });
                routes += 1;
            }
        }
    }
    routes
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_mesh::dn::DnMesh;
    use sg_mesh::shape::MeshShape;
    use sg_simd::{EmbeddedMeshMachine, MeshMachine, MeshSimd};

    fn run_broadcast<M: MeshSimd<Option<u64>>>(m: &mut M, source: &MeshPoint) -> Vec<Option<u64>> {
        let size = m.shape().size() as usize;
        let src_idx = m.shape().index_of(source) as usize;
        let mut init: Vec<Option<u64>> = vec![Some(999); size];
        init[src_idx] = Some(42);
        m.load("B", init);
        let routes = broadcast(m, "B", source);
        assert_eq!(routes, m.shape().diameter());
        m.read("B")
    }

    #[test]
    fn broadcast_on_native_mesh() {
        let shape = MeshShape::new(&[4, 3, 2]).unwrap();
        let mut m: MeshMachine<Option<u64>> = MeshMachine::new(shape.clone());
        let source = MeshPoint::from_ascending(&[2, 1, 0]).unwrap();
        let out = run_broadcast(&mut m, &source);
        assert!(out.iter().all(|v| *v == Some(42)));
        assert_eq!(m.stats().physical_routes, shape.diameter());
    }

    #[test]
    fn broadcast_on_star_via_embedding() {
        for n in 3..=5usize {
            let dn = DnMesh::new(n);
            let mut m: EmbeddedMeshMachine<Option<u64>> = EmbeddedMeshMachine::new(n);
            let source = dn.point_at(0);
            let out = run_broadcast(&mut m, &source);
            assert!(out.iter().all(|v| *v == Some(42)), "n={n}");
            // Theorem 6: at most 3x the mesh routes; dimension n-1's
            // routes cost only 1 each.
            let mesh_routes = dn.shape().diameter();
            assert!(m.stats().physical_routes <= 3 * mesh_routes, "n={n}");
            assert!(m.stats().physical_routes >= mesh_routes, "n={n}");
        }
    }

    #[test]
    fn broadcast_from_interior_source() {
        let shape = MeshShape::new(&[5]).unwrap();
        let mut m: MeshMachine<Option<u64>> = MeshMachine::new(shape);
        let source = MeshPoint::from_ascending(&[2]).unwrap();
        let out = run_broadcast(&mut m, &source);
        assert!(out.iter().all(|v| *v == Some(42)));
    }

    #[test]
    #[should_panic(expected = "source PE holds no value")]
    fn broadcast_requires_source_value() {
        let shape = MeshShape::new(&[3]).unwrap();
        let mut m: MeshMachine<Option<u64>> = MeshMachine::new(shape);
        m.load("B", vec![None, None, None]);
        let source = MeshPoint::from_ascending(&[1]).unwrap();
        let _ = broadcast(&mut m, "B", &source);
    }
}
