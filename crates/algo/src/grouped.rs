//! The Appendix's grouped-dimension view: simulate a `d`-dimensional
//! mesh on `D_n` (and hence on the star graph).
//!
//! The Appendix factorizes the extent multiset `{2, …, n}` into `d`
//! groups and claims the `(n−1)`-dimensional mesh can simulate the
//! resulting `l_1 × ⋯ × l_d` mesh with constant overhead. The
//! construction made concrete: linearize each group of dimensions in
//! **snake (boustrophedon) order**, so that consecutive virtual
//! coordinates are physically adjacent. One virtual unit route then
//! decomposes into a handful of masked SIMD-A routes — one per
//! `(inner dimension, direction)` *move class* — and the measured
//! class count is exactly the constant the Appendix hides in its
//! `O(1)`.
//!
//! [`GroupedMachine`] implements the full `MeshSimd` interface for the
//! virtual mesh, so 2-D algorithms (shearsort!) run unchanged on a
//! grouped `D_n` — natively or through the star-graph embedding.

use sg_mesh::factorization::factorize;
use sg_mesh::shape::{MeshShape, Sign};
use sg_mesh::MeshPoint;
use sg_simd::machine::{MeshSimd, RouteStats};
use std::collections::HashMap;

/// Scratch register for class routing.
const SCRATCH: &str = "__grouped_scratch";

/// Boustrophedon walk over a sub-mesh with the given extents
/// (dimension 0 of the tuple fastest). Consecutive tuples differ by
/// ±1 in exactly one slot.
#[must_use]
pub fn snake_walk(extents: &[usize]) -> Vec<Vec<u32>> {
    assert!(!extents.is_empty() && extents.iter().all(|&l| l > 0));
    let g = extents.len();
    let total: usize = extents.iter().product();
    let mut coords = vec![0u32; g];
    let mut dirs = vec![true; g]; // true = increasing
    let mut out = Vec::with_capacity(total);
    out.push(coords.clone());
    for _ in 1..total {
        let mut t = 0;
        loop {
            assert!(t < g, "walk exhausted early");
            let can = if dirs[t] {
                (coords[t] as usize) + 1 < extents[t]
            } else {
                coords[t] > 0
            };
            if can {
                coords[t] = if dirs[t] {
                    coords[t] + 1
                } else {
                    coords[t] - 1
                };
                break;
            }
            dirs[t] = !dirs[t];
            t += 1;
        }
        out.push(coords.clone());
    }
    out
}

/// One group of inner dimensions linearized in snake order.
#[derive(Debug, Clone)]
struct SnakeGroup {
    /// Inner dimensions (1-based), fastest first.
    dims: Vec<usize>,
    /// Snake sequence of coordinate tuples (aligned with `dims`).
    order: Vec<Vec<u32>>,
    /// Inverse of `order`.
    pos: HashMap<Vec<u32>, u32>,
}

impl SnakeGroup {
    fn new(inner: &MeshShape, dims: Vec<usize>) -> Self {
        let extents: Vec<usize> = dims.iter().map(|&d| inner.extent(d)).collect();
        let order = snake_walk(&extents);
        let pos = order
            .iter()
            .enumerate()
            .map(|(i, c)| (c.clone(), i as u32))
            .collect();
        SnakeGroup { dims, order, pos }
    }

    fn len(&self) -> usize {
        self.order.len()
    }

    fn coords_of(&self, p: &MeshPoint) -> Vec<u32> {
        self.dims.iter().map(|&d| p.d(d)).collect()
    }

    fn position_of(&self, p: &MeshPoint) -> u32 {
        self.pos[&self.coords_of(p)]
    }

    /// The inner `(dim, sign)` move carrying position `v` to `v ± 1`,
    /// or `None` at the snake boundary.
    fn move_class(&self, v: u32, sign: Sign) -> Option<(usize, Sign)> {
        let next = match sign {
            Sign::Plus => {
                if (v as usize) + 1 >= self.len() {
                    return None;
                }
                v + 1
            }
            Sign::Minus => v.checked_sub(1)?,
        };
        let a = &self.order[v as usize];
        let b = &self.order[next as usize];
        let slot = (0..a.len())
            .find(|&s| a[s] != b[s])
            .expect("snake step moves");
        let isign = if b[slot] > a[slot] {
            Sign::Plus
        } else {
            Sign::Minus
        };
        Some((self.dims[slot], isign))
    }
}

/// Geometry of a grouped view: a partition of the inner dimensions
/// into `d` snake-linearized virtual dimensions.
#[derive(Debug, Clone)]
pub struct GroupedGeometry {
    inner: MeshShape,
    groups: Vec<SnakeGroup>,
    vshape: MeshShape,
}

impl GroupedGeometry {
    /// Builds the geometry from an explicit partition (`partition[k]`
    /// lists the inner dimensions, 1-based, of virtual dimension
    /// `k+1`; fastest inner dimension first).
    ///
    /// # Panics
    /// Panics unless the partition covers each inner dimension exactly
    /// once.
    #[must_use]
    pub fn new(inner: &MeshShape, partition: &[Vec<usize>]) -> Self {
        let mut seen = vec![false; inner.dims() + 1];
        for dims in partition {
            for &d in dims {
                assert!(d >= 1 && d <= inner.dims(), "dimension {d} out of range");
                assert!(!seen[d], "dimension {d} appears twice");
                seen[d] = true;
            }
        }
        assert!(
            seen[1..].iter().all(|&b| b),
            "partition must cover every inner dimension"
        );
        let groups: Vec<SnakeGroup> = partition
            .iter()
            .map(|dims| SnakeGroup::new(inner, dims.clone()))
            .collect();
        let vshape = MeshShape::new(&groups.iter().map(SnakeGroup::len).collect::<Vec<_>>())
            .expect("nonempty partition");
        GroupedGeometry {
            inner: inner.clone(),
            groups,
            vshape,
        }
    }

    /// The Appendix partition of `D_n` into `d` groups: group `k`
    /// (1-based) takes the factors `n−k+1, n−k+1−d, …`, i.e. inner
    /// dimensions `n−k, n−k−d, …` (listed smallest first). The
    /// resulting virtual extents are exactly
    /// `sg_mesh::factorization::factorize(n, d)`.
    #[must_use]
    pub fn appendix(n: usize, d: usize) -> Self {
        let inner = sg_mesh::dn::DnMesh::new(n).shape().clone();
        let mut partition: Vec<Vec<usize>> = Vec::with_capacity(d);
        for k in 1..=d {
            let mut dims = Vec::new();
            let mut f = n as i64 - (k as i64 - 1);
            while f >= 2 {
                dims.push((f - 1) as usize); // factor f is dimension f-1
                f -= d as i64;
            }
            dims.sort_unstable();
            partition.push(dims);
        }
        let geom = GroupedGeometry::new(&inner, &partition);
        // Cross-check against the factorization module: virtual dim k
        // has extent l_k, and factorize returns [l_1, …, l_d].
        debug_assert_eq!(
            geom.vshape
                .extents()
                .iter()
                .map(|&x| x as u64)
                .collect::<Vec<_>>(),
            factorize(n, d)
        );
        geom
    }

    /// Virtual mesh shape.
    #[must_use]
    pub fn virtual_shape(&self) -> &MeshShape {
        &self.vshape
    }

    /// Inner mesh shape.
    #[must_use]
    pub fn inner_shape(&self) -> &MeshShape {
        &self.inner
    }

    /// Virtual point of an inner point.
    #[must_use]
    pub fn virtual_point(&self, p: &MeshPoint) -> MeshPoint {
        let coords: Vec<u32> = self.groups.iter().map(|g| g.position_of(p)).collect();
        MeshPoint::from_ascending(&coords).expect("nonempty")
    }

    /// Inner point of a virtual point.
    #[must_use]
    pub fn inner_point(&self, v: &MeshPoint) -> MeshPoint {
        let mut coords = vec![0u32; self.inner.dims()];
        for (k, g) in self.groups.iter().enumerate() {
            let tuple = &g.order[v.d(k + 1) as usize];
            for (slot, &dim) in g.dims.iter().enumerate() {
                coords[dim - 1] = tuple[slot];
            }
        }
        MeshPoint::from_ascending(&coords).expect("nonempty")
    }

    /// The inner `(dim, sign)` move class of `p` for a virtual route
    /// along `vdim` with direction `sign`; `None` at the boundary.
    #[must_use]
    pub fn move_class(&self, p: &MeshPoint, vdim: usize, sign: Sign) -> Option<(usize, Sign)> {
        let g = &self.groups[vdim - 1];
        g.move_class(g.position_of(p), sign)
    }

    /// All move classes a route along `vdim` can use: each inner
    /// dimension of the group in both directions.
    fn classes(&self, vdim: usize) -> Vec<(usize, Sign)> {
        self.groups[vdim - 1]
            .dims
            .iter()
            .flat_map(|&d| [(d, Sign::Plus), (d, Sign::Minus)])
            .collect()
    }
}

/// A virtual `d`-dimensional machine over an inner [`MeshSimd`].
pub struct GroupedMachine<'a, T: Clone, M: MeshSimd<T>> {
    inner: &'a mut M,
    geom: GroupedGeometry,
    stats: RouteStats,
    _marker: std::marker::PhantomData<T>,
}

impl<'a, T: Clone, M: MeshSimd<T>> GroupedMachine<'a, T, M> {
    /// Wraps `inner` with the given grouped geometry.
    ///
    /// # Panics
    /// Panics if the geometry's inner shape differs from the
    /// machine's.
    pub fn new(inner: &'a mut M, geom: GroupedGeometry) -> Self {
        assert_eq!(
            inner.shape(),
            &geom.inner,
            "geometry built for another shape"
        );
        GroupedMachine {
            inner,
            geom,
            stats: RouteStats::default(),
            _marker: std::marker::PhantomData,
        }
    }

    /// The geometry (for mapping indices in reports).
    #[must_use]
    pub fn geometry(&self) -> &GroupedGeometry {
        &self.geom
    }

    /// Inner machine access (for its route statistics).
    #[must_use]
    pub fn inner(&self) -> &M {
        self.inner
    }

    fn sync_stats(&mut self) {
        self.stats.physical_routes = self.inner.stats().physical_routes;
    }
}

impl<'a, T: Clone, M: MeshSimd<T>> MeshSimd<T> for GroupedMachine<'a, T, M> {
    fn shape(&self) -> &MeshShape {
        &self.geom.vshape
    }

    fn load(&mut self, reg: &str, data: Vec<T>) {
        assert_ne!(reg, SCRATCH, "register name {SCRATCH} is reserved");
        // data is in virtual index order; permute to inner order.
        let inner_shape = &self.geom.inner;
        let mut by_inner: Vec<Option<T>> = vec![None; data.len()];
        for (vidx, v) in data.into_iter().enumerate() {
            let vp = self.geom.vshape.point_at(vidx as u64);
            let ip = self.geom.inner_point(&vp);
            by_inner[inner_shape.index_of(&ip) as usize] = Some(v);
        }
        self.inner.load(
            reg,
            by_inner
                .into_iter()
                .map(|o| o.expect("bijection"))
                .collect(),
        );
    }

    fn read(&self, reg: &str) -> Vec<T> {
        let by_inner = self.inner.read(reg);
        let inner_shape = &self.geom.inner;
        let mut out: Vec<Option<T>> = vec![None; by_inner.len()];
        for (iidx, v) in by_inner.into_iter().enumerate() {
            let ip = inner_shape.point_at(iidx as u64);
            let vp = self.geom.virtual_point(&ip);
            out[self.geom.vshape.index_of(&vp) as usize] = Some(v);
        }
        out.into_iter().map(|o| o.expect("bijection")).collect()
    }

    fn update(&mut self, reg: &str, f: &mut dyn FnMut(&MeshPoint, &mut T)) {
        let geom = self.geom.clone();
        self.inner
            .update(reg, &mut |ip, v| f(&geom.virtual_point(ip), v));
    }

    fn combine(&mut self, dst: &str, src: &str, f: &mut dyn FnMut(&MeshPoint, &mut T, &T)) {
        let geom = self.geom.clone();
        self.inner
            .combine(dst, src, &mut |ip, d, s| f(&geom.virtual_point(ip), d, s));
    }

    fn route_where(
        &mut self,
        reg: &str,
        vdim: usize,
        sign: Sign,
        mask: &dyn Fn(&MeshPoint) -> bool,
    ) {
        assert!(
            vdim >= 1 && vdim <= self.geom.vshape.dims(),
            "virtual dim out of range"
        );
        let geom = self.geom.clone();
        let snapshot = self.inner.read(reg);
        for (idim, isign) in geom.classes(vdim) {
            // Senders of this class under the virtual mask.
            let sender = |ip: &MeshPoint| {
                geom.move_class(ip, vdim, sign) == Some((idim, isign))
                    && mask(&geom.virtual_point(ip))
            };
            // Skip empty classes without spending a unit route.
            let inner_shape = geom.inner_shape();
            let any = (0..inner_shape.size()).any(|i| sender(&inner_shape.point_at(i)));
            if !any {
                continue;
            }
            self.inner.load(SCRATCH, snapshot.clone());
            self.inner.route_where(SCRATCH, idim, isign, &sender);
            // Receivers: inner points whose virtual predecessor (w.r.t.
            // the routed direction) is a masked sender of this class.
            self.inner.combine(reg, SCRATCH, &mut |ip, d, s| {
                let vp = geom.virtual_point(ip);
                let vc = vp.d(vdim);
                let pred_vc = match sign {
                    Sign::Plus => {
                        if vc == 0 {
                            return;
                        }
                        vc - 1
                    }
                    Sign::Minus => {
                        if vc as usize + 1 >= geom.vshape.extent(vdim) {
                            return;
                        }
                        vc + 1
                    }
                };
                let pred_v = vp.with_d(vdim, pred_vc);
                let pred_i = geom.inner_point(&pred_v);
                if geom.move_class(&pred_i, vdim, sign) == Some((idim, isign)) && mask(&pred_v) {
                    *d = s.clone();
                }
            });
        }
        self.stats.logical_mesh_routes += 1;
        self.sync_stats();
    }

    fn stats(&self) -> &RouteStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_simd::machine::mesh_route_semantics;
    use sg_simd::{EmbeddedMeshMachine, MeshMachine};

    #[test]
    fn snake_walk_is_adjacent_and_complete() {
        for extents in [vec![2usize, 3], vec![3, 2, 2], vec![4], vec![2, 2, 2, 2]] {
            let walk = snake_walk(&extents);
            let total: usize = extents.iter().product();
            assert_eq!(walk.len(), total);
            let set: std::collections::HashSet<_> = walk.iter().cloned().collect();
            assert_eq!(set.len(), total, "all tuples distinct");
            for w in walk.windows(2) {
                let diff: Vec<usize> = (0..extents.len()).filter(|&s| w[0][s] != w[1][s]).collect();
                assert_eq!(diff.len(), 1, "single-step moves");
                assert_eq!(w[0][diff[0]].abs_diff(w[1][diff[0]]), 1);
            }
        }
    }

    #[test]
    fn appendix_geometry_extents_match_factorize() {
        for n in 3..=7usize {
            for d in 1..n {
                let geom = GroupedGeometry::appendix(n, d);
                let mut got: Vec<u64> = geom
                    .virtual_shape()
                    .extents()
                    .iter()
                    .map(|&x| x as u64)
                    .collect();
                got.sort_unstable();
                let mut expect = factorize(n, d);
                expect.sort_unstable();
                assert_eq!(got, expect, "n={n} d={d}");
            }
        }
    }

    #[test]
    fn point_mapping_roundtrip() {
        let geom = GroupedGeometry::appendix(5, 2);
        let vshape = geom.virtual_shape().clone();
        for vidx in 0..vshape.size() {
            let vp = vshape.point_at(vidx);
            let ip = geom.inner_point(&vp);
            assert_eq!(geom.virtual_point(&ip), vp);
        }
    }

    /// Routes on the grouped view must match a genuine mesh of the
    /// virtual shape.
    fn compare_virtual_route(n: usize, d: usize, vdim: usize, sign: Sign) {
        let geom = GroupedGeometry::appendix(n, d);
        let vshape = geom.virtual_shape().clone();
        let size = vshape.size() as usize;
        let data: Vec<u64> = (0..size as u64).collect();

        // Reference: native machine with the virtual shape.
        let expect = mesh_route_semantics(&vshape, &data, vdim, sign, &|_| true);

        // Grouped over a native D_n machine.
        let mut inner: MeshMachine<u64> = MeshMachine::new(geom.inner_shape().clone());
        let mut grouped = GroupedMachine::new(&mut inner, geom);
        grouped.load("A", data.clone());
        grouped.route("A", vdim, sign);
        assert_eq!(
            grouped.read("A"),
            expect,
            "n={n} d={d} vdim={vdim} {sign:?}"
        );
    }

    #[test]
    fn virtual_routes_match_reference_semantics() {
        for (n, d) in [(4, 2), (5, 2), (5, 3), (6, 2)] {
            for vdim in 1..=d {
                for sign in [Sign::Plus, Sign::Minus] {
                    compare_virtual_route(n, d, vdim, sign);
                }
            }
        }
    }

    #[test]
    fn masked_virtual_routes_match() {
        let geom = GroupedGeometry::appendix(5, 2);
        let vshape = geom.virtual_shape().clone();
        let size = vshape.size() as usize;
        let data: Vec<u64> = (0..size as u64).map(|x| x * 3 + 1).collect();
        let mask = |p: &MeshPoint| p.d(2).is_multiple_of(2);
        let expect = mesh_route_semantics(&vshape, &data, 1, Sign::Plus, &mask);

        let mut inner: MeshMachine<u64> = MeshMachine::new(geom.inner_shape().clone());
        let mut grouped = GroupedMachine::new(&mut inner, geom);
        grouped.load("A", data);
        grouped.route_where("A", 1, Sign::Plus, &mask);
        assert_eq!(grouped.read("A"), expect);
    }

    #[test]
    fn appendix_constant_is_measured() {
        // The O(1) constant: inner unit routes per virtual route is at
        // most 2 * (group size), usually far less.
        let geom = GroupedGeometry::appendix(6, 2);
        let group_size = 3; // dims {5,3,1} resp {4,2}
        let mut inner: MeshMachine<u64> = MeshMachine::new(geom.inner_shape().clone());
        let mut grouped = GroupedMachine::new(&mut inner, geom);
        let size = grouped.shape().size() as usize;
        grouped.load("A", (0..size as u64).collect());
        grouped.route("A", 1, Sign::Plus);
        let inner_routes = grouped.stats().physical_routes;
        assert!(inner_routes >= 1);
        assert!(
            inner_routes <= 2 * group_size,
            "virtual route used {inner_routes} inner routes"
        );
    }

    #[test]
    fn shearsort_on_grouped_dn() {
        // Appendix d=2 view of D_5 (15 x 8), sorted by shearsort.
        use crate::shearsort::shearsort;
        use crate::util::is_sorted_snake;
        use rand::prelude::*;
        use rand_chacha::ChaCha8Rng;

        let geom = GroupedGeometry::appendix(5, 2);
        let vshape = geom.virtual_shape().clone();
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let data: Vec<u64> = (0..vshape.size())
            .map(|_| rng.gen_range(0..10_000))
            .collect();

        let mut inner: MeshMachine<u64> = MeshMachine::new(geom.inner_shape().clone());
        let mut grouped = GroupedMachine::new(&mut inner, geom);
        grouped.load("A", data.clone());
        shearsort(&mut grouped, "A");
        assert!(is_sorted_snake(&vshape, &grouped.read("A")));
    }

    #[test]
    fn shearsort_on_the_star_graph() {
        // The §5 scenario end-to-end: shearsort on the 2-D grouped view
        // of D_4, executed on S_4 through the dilation-3 embedding.
        use crate::shearsort::shearsort;
        use crate::util::is_sorted_snake;
        use rand::prelude::*;
        use rand_chacha::ChaCha8Rng;

        let n = 4;
        let geom = GroupedGeometry::appendix(n, 2);
        let vshape = geom.virtual_shape().clone();
        let mut rng = ChaCha8Rng::seed_from_u64(123);
        let data: Vec<u64> = (0..vshape.size()).map(|_| rng.gen_range(0..100)).collect();

        let mut star: EmbeddedMeshMachine<u64> = EmbeddedMeshMachine::new(n);
        let mut grouped = GroupedMachine::new(&mut star, geom);
        grouped.load("A", data.clone());
        shearsort(&mut grouped, "A");
        let out = grouped.read("A");
        assert!(is_sorted_snake(&vshape, &out));
        let mut expect = data;
        expect.sort_unstable();
        let snake: Vec<u64> = crate::util::snake_order_2d(&vshape)
            .iter()
            .map(|&i| out[i as usize])
            .collect();
        assert_eq!(snake, expect);
    }
}
