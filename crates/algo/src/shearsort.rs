//! Shearsort on a 2-D mesh (`[SCHE89]`, cited in §5).
//!
//! Alternately sort rows boustrophedon (even rows ascending, odd rows
//! descending) and columns ascending; after `⌈log₂ r⌉ + 1` full
//! rounds plus a final row pass, the mesh is sorted in **snake
//! order**. Cost `O((log r)(2c + 2r))` unit routes with the odd-even
//! line sorter.
//!
//! Because it is written against `MeshSimd`, the same code sorts
//! * a native 2-D mesh machine,
//! * the grouped (Appendix-factorized) 2-D view of `D_n`, and —
//!   stacking the grouped view on the embedded machine —
//! * **the star graph** (the §5 scenario).

use crate::oddeven::odd_even_sort;
use sg_simd::MeshSimd;

/// Snake-sorts a 2-D machine in place. Returns logical unit routes
/// used (as counted by this algorithm's calls).
///
/// # Panics
/// Panics unless the shape is 2-D.
pub fn shearsort<T, M>(m: &mut M, reg: &str) -> u64
where
    T: Ord + Clone,
    M: MeshSimd<T>,
{
    let shape = m.shape().clone();
    assert_eq!(shape.dims(), 2, "shearsort needs a 2-D machine");
    let rows = shape.extent(2);
    let rounds = (rows.max(2) as f64).log2().ceil() as usize + 1;
    let mut routes = 0u64;
    for _ in 0..rounds {
        // Rows: boustrophedon directions keyed by row parity.
        routes += odd_even_sort(m, reg, 1, &|p| p.d(2) % 2 == 0);
        // Columns: ascending.
        routes += odd_even_sort(m, reg, 2, &|_| true);
    }
    // Final row pass leaves the snake order.
    routes += odd_even_sort(m, reg, 1, &|p| p.d(2) % 2 == 0);
    routes
}

/// Theoretical unit-route count of [`shearsort`] on an `c × r` mesh:
/// `(⌈log₂ r⌉ + 1)(2c + 2r) + 2c`.
#[must_use]
pub fn shearsort_route_model(cols: usize, rows: usize) -> u64 {
    let rounds = (rows.max(2) as f64).log2().ceil() as u64 + 1;
    rounds * (2 * cols as u64 + 2 * rows as u64) + 2 * cols as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::is_sorted_snake;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;
    use sg_mesh::shape::MeshShape;
    use sg_simd::{MeshMachine, MeshSimd};

    fn random_data(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0..1_000)).collect()
    }

    #[test]
    fn sorts_square_mesh() {
        let shape = MeshShape::new(&[8, 8]).unwrap();
        let mut m: MeshMachine<u64> = MeshMachine::new(shape.clone());
        let data = random_data(64, 1);
        let mut expect = data.clone();
        expect.sort_unstable();
        m.load("A", data);
        let routes = shearsort(&mut m, "A");
        assert_eq!(routes, shearsort_route_model(8, 8));
        assert_eq!(m.stats().physical_routes, routes);
        let out = m.read("A");
        assert!(is_sorted_snake(&shape, &out));
        // Snake order recovers the sorted sequence.
        let snake: Vec<u64> = crate::util::snake_order_2d(&shape)
            .iter()
            .map(|&i| out[i as usize])
            .collect();
        assert_eq!(snake, expect);
    }

    #[test]
    fn sorts_rectangular_meshes() {
        for (c, r, seed) in [(15, 8, 2u64), (4, 6, 3), (9, 3, 4), (2, 2, 5), (1, 5, 6)] {
            let shape = MeshShape::new(&[c, r]).unwrap();
            let mut m: MeshMachine<u64> = MeshMachine::new(shape.clone());
            let data = random_data(c * r, seed);
            m.load("A", data);
            shearsort(&mut m, "A");
            assert!(is_sorted_snake(&shape, &m.read("A")), "{c}x{r}");
        }
    }

    #[test]
    fn adversarial_patterns() {
        let shape = MeshShape::new(&[6, 6]).unwrap();
        for data in [
            (0..36u64).rev().collect::<Vec<_>>(),          // reverse sorted
            vec![1; 36],                                   // all equal
            (0..36u64).map(|x| x % 2).collect::<Vec<_>>(), // binary
        ] {
            let mut m: MeshMachine<u64> = MeshMachine::new(shape.clone());
            m.load("A", data);
            shearsort(&mut m, "A");
            assert!(is_sorted_snake(&shape, &m.read("A")));
        }
    }
}
